package ckpt

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// logicalTensor is one fully assembled logical tensor: the value buffer and
// the optimizer moment buffers, each in the logical (unsharded) layout.
type logicalTensor struct {
	shape   []int
	values  []float64
	opt     map[string][]float64
	optKeys []string
}

// piece is one shard's contribution to a logical tensor during assembly.
type piece struct {
	lo, hi int
	leaf   Leaf
}

// Checkpoint is an opened checkpoint: the manifest plus every logical
// tensor assembled from the saved sharding, ready to be re-sliced for any
// loading topology.
type Checkpoint struct {
	Manifest Manifest

	logical map[string]*logicalTensor
}

// Open reads dir's manifest and every shard file, assembles the logical
// tensors from whatever sharding they were saved under, and returns the
// resulting Checkpoint. Incomplete tilings, conflicting replicas' shapes,
// and malformed leaves are all reported (joined into one error).
func Open(dir string) (*Checkpoint, error) {
	m, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	trees := make([]Tree, 0, len(m.Shards))
	for _, shard := range m.Shards {
		tree, err := readShard(filepath.Join(dir, shard))
		if err != nil {
			return nil, err
		}
		trees = append(trees, tree)
	}
	return Assemble(m, trees)
}

// Assemble builds a Checkpoint from already-loaded shard trees under the
// given manifest — the in-memory path behind elastic resharding, where the
// surviving ranks' state trees become the restore source without touching
// disk. Open is Assemble over the trees read from a committed directory.
// The trees must jointly tile every logical tensor; incomplete tilings,
// conflicting replica shapes, and malformed leaves are all reported
// (joined into one error).
func Assemble(m Manifest, trees []Tree) (*Checkpoint, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("ckpt: assemble with no shard trees")
	}
	c := &Checkpoint{Manifest: m, logical: make(map[string]*logicalTensor)}

	type assembly struct {
		axis      int
		fullShape []int
		whole     *Leaf
		pieces    []piece
	}
	byKey := make(map[string]*assembly)
	var order []string
	var errs []error
	for i, tree := range trees {
		if tree.OptAlgo != m.OptAlgo {
			errs = append(errs, fmt.Errorf("ckpt: shard %d optimizer %q does not match manifest %q", i, tree.OptAlgo, m.OptAlgo))
			continue
		}
		for _, leaf := range tree.Leaves {
			if err := leaf.validate(); err != nil {
				errs = append(errs, err)
				continue
			}
			key := leaf.Logical
			if key == "" {
				key = leaf.Name
			}
			a, ok := byKey[key]
			if !ok {
				a = &assembly{}
				byKey[key] = a
				order = append(order, key)
			}
			if !leaf.sharded() {
				if a.whole != nil {
					// Replicated parameter seen again: replicas are identical
					// by construction, so the first copy is authoritative —
					// only the shape must agree.
					if !sameInts(a.whole.Shape, leaf.Shape) {
						errs = append(errs, fmt.Errorf("ckpt: replicas of %q disagree on shape: %v vs %v", key, a.whole.Shape, leaf.Shape))
					}
					continue
				}
				l := leaf
				a.whole = &l
				continue
			}
			if len(a.pieces) == 0 {
				a.axis = leaf.Axis
				a.fullShape = append([]int(nil), leaf.FullShape...)
			} else if a.axis != leaf.Axis || !sameInts(a.fullShape, leaf.FullShape) {
				errs = append(errs, fmt.Errorf("ckpt: shards of %q disagree on logical layout: axis %d %v vs axis %d %v",
					key, a.axis, a.fullShape, leaf.Axis, leaf.FullShape))
				continue
			}
			a.pieces = append(a.pieces, piece{lo: leaf.Lo, hi: leaf.Hi, leaf: leaf})
		}
	}
	for _, key := range order {
		a := byKey[key]
		lt, err := assemble(key, a.whole, a.pieces, a.axis, a.fullShape)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		c.logical[key] = lt
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return c, nil
}

// assemble builds one logical tensor from a whole replica and/or shard
// pieces. Pieces must tile the sharded axis exactly; duplicate [lo, hi)
// ranges (replicas of the same shard) collapse to the first copy.
func assemble(key string, whole *Leaf, pieces []piece, axis int, fullShape []int) (*logicalTensor, error) {
	if whole != nil {
		if len(pieces) != 0 {
			return nil, fmt.Errorf("ckpt: %q saved both whole and sharded", key)
		}
		return &logicalTensor{
			shape:   append([]int(nil), whole.Shape...),
			values:  whole.Values,
			opt:     whole.Opt,
			optKeys: whole.optKeys(),
		}, nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].lo < pieces[j].lo })
	dedup := pieces[:0]
	for _, p := range pieces {
		if n := len(dedup); n > 0 && dedup[n-1].lo == p.lo && dedup[n-1].hi == p.hi {
			continue // replica of the same shard slice
		}
		dedup = append(dedup, p)
	}
	pieces = dedup
	next := 0
	for _, p := range pieces {
		if p.lo != next {
			return nil, fmt.Errorf("ckpt: shards of %q leave gap or overlap at %d (next piece covers [%d,%d))", key, next, p.lo, p.hi)
		}
		next = p.hi
	}
	if next != fullShape[axis] {
		return nil, fmt.Errorf("ckpt: shards of %q cover [0,%d) of extent %d", key, next, fullShape[axis])
	}
	optKeys := pieces[0].leaf.optKeys()
	for _, p := range pieces[1:] {
		if !sameKeys(optKeys, p.leaf.optKeys()) {
			return nil, fmt.Errorf("ckpt: shards of %q disagree on optimizer buffers: %v vs %v", key, optKeys, p.leaf.optKeys())
		}
	}
	lt := &logicalTensor{
		shape:   append([]int(nil), fullShape...),
		optKeys: optKeys,
		opt:     make(map[string][]float64, len(optKeys)),
	}
	full := tensor.New(fullShape...)
	for _, p := range pieces {
		tensor.SetSliceAxis(full, axis, p.lo, tensor.FromSlice(p.leaf.Values, p.leaf.Shape...))
	}
	lt.values = full.Data
	for _, k := range optKeys {
		buf := tensor.New(fullShape...)
		for _, p := range pieces {
			tensor.SetSliceAxis(buf, axis, p.lo, tensor.FromSlice(p.leaf.Opt[k], p.leaf.Shape...))
		}
		lt.opt[k] = buf.Data
	}
	return lt, nil
}

// slice extracts a parameter's view of a logical buffer: the whole buffer
// for unsharded parameters, the [Lo, Hi) slice along the shard axis
// otherwise. The result escapes to the caller (optimizer state), so it is a
// fresh copy; the parameter restore path uses sliceInto instead.
func slice(lt *logicalTensor, buf []float64, p *nn.Param) []float64 {
	if p.Shard == nil {
		return buf
	}
	t := tensor.FromSlice(buf, lt.shape...)
	return tensor.SliceAxis(t, p.Shard.Axis, p.Shard.Lo, p.Shard.Hi).Data
}

// sliceInto writes a parameter's slice of a logical buffer directly into
// dst (the parameter's own storage), avoiding the transient copy slice
// would make. dst must have the parameter's shape.
func sliceInto(dst *tensor.Tensor, lt *logicalTensor, buf []float64, p *nn.Param) {
	if p.Shard == nil {
		copy(dst.Data, buf)
		return
	}
	src := tensor.FromSlice(buf, lt.shape...)
	tensor.SliceAxisInto(dst, src, p.Shard.Axis, p.Shard.Lo, p.Shard.Hi)
}

// lookup resolves a parameter's logical tensor and validates the logical
// shape against the parameter's expectation.
func (c *Checkpoint) lookup(p *nn.Param) (*logicalTensor, error) {
	key := p.LogicalKey()
	lt, ok := c.logical[key]
	if !ok {
		return nil, fmt.Errorf("ckpt: checkpoint missing parameter %q", key)
	}
	if !sameInts(lt.shape, p.FullShape()) {
		return nil, fmt.Errorf("ckpt: parameter %q logical shape %v does not match checkpoint %v", key, p.FullShape(), lt.shape)
	}
	return lt, nil
}

// RestoreParams writes every parameter's slice of its logical tensor into
// the parameter, resharding from the saved topology to the caller's. All
// missing and shape-mismatched parameters are reported in one joined error,
// and nothing is written unless every parameter matches.
func (c *Checkpoint) RestoreParams(params []*nn.Param) error {
	var errs []error
	resolved := make([]*logicalTensor, len(params))
	for i, p := range params {
		lt, err := c.lookup(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		resolved[i] = lt
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	for i, p := range params {
		sliceInto(p.W, resolved[i], resolved[i].values, p)
	}
	return nil
}

// RestoreOptimizer rebuilds the optimizer state for the caller's topology —
// each moment buffer re-sliced exactly like its parameter — and imports it,
// so a resumed run continues the saved optimization trajectory (AdamW bias
// correction included). params must be the same list the optimizer was
// constructed over.
func (c *Checkpoint) RestoreOptimizer(opt optim.Stateful, params []*nn.Param) error {
	st := optim.State{
		Algo:    c.Manifest.OptAlgo,
		Moments: make(map[string]optim.Moment),
	}
	var errs []error
	for _, p := range params {
		lt, err := c.lookup(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if len(lt.optKeys) == 0 {
			continue
		}
		m := make(optim.Moment, len(lt.optKeys))
		for _, k := range lt.optKeys {
			m[k] = slice(lt, lt.opt[k], p)
		}
		st.Moments[p.Name] = m
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	st.Step = c.optStep()
	return opt.ImportState(st)
}

// optStep returns the optimizer step count saved with the checkpoint. It
// equals the manifest's training step for the repository's optimizers.
func (c *Checkpoint) optStep() int { return c.Manifest.Step }

// LogicalTensor returns the assembled logical value tensor for a key, for
// inspection and tests.
func (c *Checkpoint) LogicalTensor(key string) (*tensor.Tensor, bool) {
	lt, ok := c.logical[key]
	if !ok {
		return nil, false
	}
	return tensor.FromSlice(append([]float64(nil), lt.values...), lt.shape...), true
}

// Keys returns every logical tensor name in the checkpoint, sorted.
func (c *Checkpoint) Keys() []string {
	keys := make([]string, 0, len(c.logical))
	for k := range c.logical {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ExtraKeys returns logical tensors present in the checkpoint but absent
// from params' logical keys. A serial (single-rank) load uses it to detect
// architecture drift; a multi-rank load cannot, since each rank consumes
// only its own partials.
func (c *Checkpoint) ExtraKeys(params []*nn.Param) []string {
	seen := make(map[string]struct{}, len(params))
	for _, p := range params {
		seen[p.LogicalKey()] = struct{}{}
	}
	var extra []string
	for k := range c.logical {
		if _, ok := seen[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	return extra
}
