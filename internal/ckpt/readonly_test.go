package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// dirFingerprint captures every entry under root (recursively) with its
// size and modification time, so a test can prove a code path created,
// rewrote, or touched nothing.
func dirFingerprint(t *testing.T, root string) map[string]string {
	t.Helper()
	fp := make(map[string]string)
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		fp[path] = fmt.Sprintf("%s/%s/%d", info.ModTime().Format("2006-01-02T15:04:05.999999999"), info.Mode(), info.Size())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestOpenIsReadOnly is the serving-path regression test: opening and
// restoring from a checkpoint must never require write access to the
// checkpoint directory. It chmods the whole tree read-only (belt) and also
// fingerprints every entry before and after the load (suspenders — the test
// may run as root, which permission bits do not stop).
func TestOpenIsReadOnly(t *testing.T) {
	root := t.TempDir()

	// A keep-last-k layout with a partial (manifest-less) save on top, so
	// the load path exercises ListSteps/LatestDir as well as Open.
	stepDir := StepDir(root, 3)
	saveRanks(t, stepDir, shardedParams(t, 2, 4, 3, fill), nil, Manifest{Partitions: 2, Step: 3})
	partial := StepDir(root, 4)
	if err := WriteShard(partial, 0, BuildTree(shardedParams(t, 2, 4, 3, fill)[0], nil)); err != nil {
		t.Fatal(err)
	}

	var paths []string
	if err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		mode := os.FileMode(0o444)
		if info.IsDir() {
			mode = 0o555
		}
		if err := os.Chmod(p, mode); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range paths {
			os.Chmod(p, 0o755)
		}
	})

	before := dirFingerprint(t, root)

	ck, err := OpenLatest(root)
	if err != nil {
		t.Fatalf("OpenLatest from read-only directory: %v", err)
	}
	if ck.Manifest.Step != 3 {
		t.Fatalf("resolved step %d, want 3 (the committed checkpoint)", ck.Manifest.Step)
	}
	target := nn.NewParam("w", tensor.New(4, 3))
	if err := ck.RestoreParams([]*nn.Param{target}); err != nil {
		t.Fatalf("RestoreParams: %v", err)
	}
	if target.W.At(1, 2) != fill(1, 2) {
		t.Fatalf("restored value %v, want %v", target.W.At(1, 2), fill(1, 2))
	}
	if _, err := ListSteps(root); err != nil {
		t.Fatalf("ListSteps: %v", err)
	}

	after := dirFingerprint(t, root)
	if len(before) != len(after) {
		t.Fatalf("load changed the entry count: %d -> %d", len(before), len(after))
	}
	for p, sig := range before {
		if after[p] != sig {
			t.Fatalf("load touched %s: %q -> %q", p, sig, after[p])
		}
	}
}
