package ckpt

import (
	"time"
)

// WatchOptions tunes WatchLatest's polling loop.
type WatchOptions struct {
	// Interval is the base poll period (default 250ms). While nothing
	// changes the watcher backs off by doubling up to MaxInterval, and
	// resets to Interval the moment a new checkpoint commits, so a quiet
	// directory costs almost nothing and a busy one is noticed fast.
	Interval time.Duration
	// MaxInterval caps the backoff (default 8*Interval).
	MaxInterval time.Duration
}

func (o WatchOptions) withDefaults() WatchOptions {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.MaxInterval < o.Interval {
		o.MaxInterval = 8 * o.Interval
	}
	return o
}

// Update is one WatchLatest emission: a newly committed checkpoint.
type Update struct {
	// Dir is the resolved directory of the newest complete checkpoint
	// (the step subdirectory under the retention layout, the watched
	// directory itself under the single-slot layout).
	Dir string
	// Step is the manifest's optimizer step count.
	Step int
}

// WatchLatest polls dir for newly committed checkpoints and emits an
// Update for each one that supersedes the last state seen — the live
// replication signal behind hot checkpoint swap. The first poll
// establishes the baseline (the checkpoint already present, if any) and
// is NOT emitted: only checkpoints that commit after the watch starts
// flow out, so a serving engine already loaded from dir is never asked
// to swap to the model it is serving.
//
// Commit detection reuses the retention rules: a checkpoint exists
// exactly when its MANIFEST.json does (LatestDir), so partial saves —
// a shard-writing crash, a directory mid-write — are never emitted.
// Single-slot overwrites are detected by the manifest's step count, not
// just the resolved path, so in-place re-saves to the same directory
// emit too.
//
// The channel is buffered one update deep with latest-wins semantics: a
// slow consumer sees the newest committed checkpoint, not a backlog of
// superseded ones. Call stop to end the watch; it blocks until the
// polling goroutine has exited (leak-check friendly) and the channel is
// closed.
func WatchLatest(dir string, opt WatchOptions) (<-chan Update, func()) {
	opt = opt.withDefaults()
	updates := make(chan Update, 1)
	quit := make(chan struct{})
	done := make(chan struct{})
	// The baseline resolves synchronously: a checkpoint committed the
	// instant after WatchLatest returns is already "new" and will emit.
	lastDir, lastStep, seen := resolveLatest(dir)
	go func() {
		defer close(done)
		defer close(updates)
		wait := opt.Interval
		timer := time.NewTimer(wait)
		defer timer.Stop()
		for {
			select {
			case <-quit:
				return
			case <-timer.C:
			}
			curDir, curStep, ok := resolveLatest(dir)
			if ok && (!seen || curStep > lastStep || (curStep == lastStep && curDir != lastDir)) {
				lastDir, lastStep, seen = curDir, curStep, true
				// Latest wins: replace any unconsumed update.
				select {
				case <-updates:
				default:
				}
				select {
				case updates <- Update{Dir: curDir, Step: curStep}:
				case <-quit:
					return
				}
				wait = opt.Interval
			} else {
				wait *= 2
				if wait > opt.MaxInterval {
					wait = opt.MaxInterval
				}
			}
			timer.Reset(wait)
		}
	}()
	return updates, func() {
		close(quit)
		<-done
	}
}

// resolveLatest resolves dir's newest complete checkpoint and its step,
// reporting ok=false when none exists (including when only partial,
// manifest-less saves are present) or the manifest cannot be read —
// a checkpoint mid-commit simply shows up on a later poll.
func resolveLatest(dir string) (string, int, bool) {
	latest, err := LatestDir(dir)
	if err != nil {
		return "", 0, false
	}
	m, err := ReadManifest(latest)
	if err != nil {
		return "", 0, false
	}
	return latest, m.Step, true
}
