package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// commitAt writes a complete single-rank checkpoint into root's retention
// subdirectory for the step.
func commitAt(t *testing.T, root string, step int) {
	t.Helper()
	dir := StepDir(root, step)
	saveRanks(t, dir, shardedParams(t, 1, 4, 2, fill), nil, Manifest{Step: step})
}

// partialAt writes a shard without a manifest — a save in flight (or
// crashed mid-write).
func partialAt(t *testing.T, root string, step int) string {
	t.Helper()
	dir := StepDir(root, step)
	if err := WriteShard(dir, 0, BuildTree(shardedParams(t, 1, 4, 2, fill)[0], nil)); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStepDirNameRoundTrip(t *testing.T) {
	for _, step := range []int{0, 1, 7, 123456789} {
		got, ok := stepOf(StepDirName(step))
		if !ok || got != step {
			t.Fatalf("stepOf(%q) = %d, %v; want %d", StepDirName(step), got, ok, step)
		}
	}
	// Non-canonical digit strings StepDirName never produces must not
	// parse either: "step-7" would otherwise resolve to the *different*
	// path step-00000007 in ListSteps/LatestDir/Prune.
	for _, name := range []string{"step-", "step-12x", "shard-0001.gob", "steps-1", "12", "step-7", "step-007", "step-000000007"} {
		if _, ok := stepOf(name); ok {
			t.Fatalf("stepOf(%q) must not parse", name)
		}
	}
}

func TestListStepsIgnoresNonCanonicalStepDirs(t *testing.T) {
	root := t.TempDir()
	commitAt(t, root, 3)
	// A foreign, unpadded "step-7" directory — even a committed one — is
	// not this package's: it must neither shadow the latest nor be
	// resolved to the wrong (padded) path.
	foreign := filepath.Join(root, "step-7")
	saveRanks(t, foreign, shardedParams(t, 1, 4, 2, fill), nil, Manifest{Step: 7})
	steps, err := ListSteps(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0] != 3 {
		t.Fatalf("steps = %v, want [3]", steps)
	}
	dir, err := LatestDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if dir != StepDir(root, 3) {
		t.Fatalf("latest = %s, want the canonical step-3", dir)
	}
	if _, err := Prune(root, 1); err != nil {
		t.Fatal(err)
	}
	if !Committed(foreign) {
		t.Fatal("prune must not touch foreign directories")
	}
}

func TestLatestDirMixedLayoutsPicksNewerStep(t *testing.T) {
	// A directory that carries both layouts — a single-slot manifest left
	// behind by an earlier keep=1 run next to newer step subdirectories —
	// must resolve by step count, never silently rolling back to the
	// older save.
	root := t.TempDir()
	saveRanks(t, root, shardedParams(t, 1, 4, 2, fill), nil, Manifest{Step: 5})
	commitAt(t, root, 20)
	dir, err := LatestDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if dir != StepDir(root, 20) {
		t.Fatalf("latest = %s, want the newer step-20 over the stale root (step 5)", dir)
	}
	// And the other way: a single-slot save newer than every step dir
	// (keep switched back to 1) wins.
	saveRanks(t, root, shardedParams(t, 1, 4, 2, fill), nil, Manifest{Step: 30})
	dir, err = LatestDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if dir != root {
		t.Fatalf("latest = %s, want the root itself (step 30 > 20)", dir)
	}
}

func TestListStepsSkipsPartialAndForeignEntries(t *testing.T) {
	root := t.TempDir()
	commitAt(t, root, 10)
	commitAt(t, root, 30)
	commitAt(t, root, 20)
	partialAt(t, root, 40)
	if err := os.MkdirAll(filepath.Join(root, "not-a-step"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	steps, err := ListSteps(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 10 || steps[1] != 20 || steps[2] != 30 {
		t.Fatalf("steps = %v, want [10 20 30] (ascending, committed only)", steps)
	}
	// A missing root is an empty listing, not an error.
	steps, err = ListSteps(filepath.Join(root, "nope"))
	if err != nil || steps != nil {
		t.Fatalf("missing root: steps=%v err=%v", steps, err)
	}
}

func TestLatestDirPrefersNewestCommitted(t *testing.T) {
	root := t.TempDir()
	commitAt(t, root, 10)
	commitAt(t, root, 20)
	// A newer partial save must not shadow the newest complete one: this
	// is resume-from-latest after a crash mid-save.
	partialAt(t, root, 30)
	dir, err := LatestDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if dir != StepDir(root, 20) {
		t.Fatalf("latest = %s, want the committed step-20", dir)
	}
	ck, err := OpenLatest(root)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Step != 20 {
		t.Fatalf("opened step %d, want 20", ck.Manifest.Step)
	}
}

func TestLatestDirSingleSlotLayout(t *testing.T) {
	// A directory that is itself a committed checkpoint resolves to
	// itself, regardless of what else it contains.
	dir := t.TempDir()
	saveRanks(t, dir, shardedParams(t, 1, 4, 2, fill), nil, Manifest{Step: 5})
	got, err := LatestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != dir {
		t.Fatalf("latest = %s, want the single-slot dir itself", got)
	}
}

func TestLatestDirFailsWithoutCommittedCheckpoint(t *testing.T) {
	root := t.TempDir()
	if _, err := LatestDir(root); err == nil {
		t.Fatal("empty root must not resolve")
	}
	partialAt(t, root, 10)
	if _, err := LatestDir(root); err == nil {
		t.Fatal("a root holding only partial saves must not resolve")
	}
}

func TestPruneKeepsNewestAndReportsOldest(t *testing.T) {
	root := t.TempDir()
	for _, step := range []int{1, 2, 3, 4, 5} {
		commitAt(t, root, step)
	}
	pruned, err := Prune(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 3 || pruned[0] != 1 || pruned[1] != 2 || pruned[2] != 3 {
		t.Fatalf("pruned = %v, want the oldest [1 2 3] in order", pruned)
	}
	steps, err := ListSteps(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 4 || steps[1] != 5 {
		t.Fatalf("remaining = %v, want [4 5]", steps)
	}
	// Idempotent below the limit.
	pruned, err = Prune(root, 2)
	if err != nil || pruned != nil {
		t.Fatalf("second prune: %v, %v", pruned, err)
	}
}

func TestPruneNeverTouchesUncommittedDirs(t *testing.T) {
	// The directory being written (shards present, manifest not yet) must
	// survive pruning no matter how deep the retention limit cuts.
	root := t.TempDir()
	for _, step := range []int{1, 2, 3} {
		commitAt(t, root, step)
	}
	inflight := partialAt(t, root, 4)
	if _, err := Prune(root, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(inflight, ShardFile(0))); err != nil {
		t.Fatalf("in-flight save was pruned: %v", err)
	}
	steps, err := ListSteps(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0] != 3 {
		t.Fatalf("remaining committed = %v, want [3]", steps)
	}
}

func TestPruneRejectsZeroKeep(t *testing.T) {
	if _, err := Prune(t.TempDir(), 0); err == nil {
		t.Fatal("keep < 1 must be rejected: retention never deletes the last checkpoint")
	}
}
