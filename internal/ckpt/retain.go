// Keep-last-k checkpoint retention. A retention root is a directory whose
// step-numbered subdirectories each hold one complete checkpoint
// (shards + manifest); train.Options.CheckpointKeep >= 2 switches the
// training loops from the historical single-slot layout (the checkpoint
// directory overwritten in place) to this layout, pruning the oldest
// committed checkpoints after each successful save.
//
// Safety rules, enforced here and covered by the package tests:
//
//   - A checkpoint is committed exactly when its MANIFEST.json exists (the
//     same commit point the writers use). Only committed checkpoints are
//     retention candidates.
//   - Prune never touches an uncommitted directory — in particular the
//     directory currently being written, whose manifest lands last — nor
//     any entry it does not recognize as a step directory.
//   - LatestDir resolves to the newest *committed* checkpoint, so a crash
//     that left a partial (manifest-less) save behind resumes from the
//     previous complete one instead of failing on the debris.

package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// stepDirPrefix prefixes retention subdirectory names; the suffix is the
// zero-padded optimizer step the checkpoint was committed at.
const stepDirPrefix = "step-"

// StepDirName returns the retention subdirectory name for a checkpoint
// committed at the given optimizer step.
func StepDirName(step int) string { return fmt.Sprintf("%s%08d", stepDirPrefix, step) }

// StepDir returns the retention subdirectory path for a step under root.
func StepDir(root string, step int) string { return filepath.Join(root, StepDirName(step)) }

// stepOf parses a retention subdirectory name back into its step; ok is
// false for names this package did not generate — including non-canonical
// digit strings (unpadded "step-7"), which would otherwise resolve to a
// different path than the directory they name.
func stepOf(name string) (step int, ok bool) {
	digits, found := strings.CutPrefix(name, stepDirPrefix)
	if !found || digits == "" {
		return 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		step = step*10 + int(c-'0')
	}
	if StepDirName(step) != name {
		return 0, false
	}
	return step, true
}

// Committed reports whether dir holds a complete checkpoint: the manifest
// is written last, so its presence is the commit point.
func Committed(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil
}

// ListSteps returns the steps of every committed checkpoint under root, in
// ascending order. Uncommitted (partial) step directories and entries this
// package did not create are skipped. A missing root lists as empty.
func ListSteps(root string) ([]int, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading retention root: %w", err)
	}
	var steps []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		step, ok := stepOf(e.Name())
		if !ok || !Committed(filepath.Join(root, e.Name())) {
			continue
		}
		steps = append(steps, step)
	}
	sort.Ints(steps)
	return steps, nil
}

// LatestDir resolves dir to its newest complete checkpoint: dir itself
// under the single-slot layout (a manifest of its own), the highest-step
// committed retention subdirectory otherwise. When both layouts are
// present — a run that switched CheckpointKeep leaves the old single-slot
// manifest behind next to newer step directories — the manifests' step
// counts decide, so resume never silently rolls back to the older save.
// It fails when no complete checkpoint exists — including when only
// partial saves are present.
func LatestDir(dir string) (string, error) {
	steps, err := ListSteps(dir)
	if err != nil {
		return "", err
	}
	if len(steps) == 0 {
		if Committed(dir) {
			return dir, nil
		}
		return "", fmt.Errorf("ckpt: no committed checkpoint under %s", dir)
	}
	latest := StepDir(dir, steps[len(steps)-1])
	if Committed(dir) {
		m, err := ReadManifest(dir)
		if err != nil {
			return "", err
		}
		if m.Step > steps[len(steps)-1] {
			return dir, nil
		}
	}
	return latest, nil
}

// OpenLatest opens the newest complete checkpoint under dir (see
// LatestDir).
func OpenLatest(dir string) (*Checkpoint, error) {
	latest, err := LatestDir(dir)
	if err != nil {
		return nil, err
	}
	return Open(latest)
}

// Prune deletes committed checkpoints under root beyond the newest keep,
// oldest first, and returns the pruned steps. Directories without a
// manifest — a save still in flight, or debris from a crash — are never
// deleted. keep must be at least 1: retention never removes the latest
// complete checkpoint.
func Prune(root string, keep int) ([]int, error) {
	if keep < 1 {
		return nil, fmt.Errorf("ckpt: retention must keep at least 1 checkpoint, got %d", keep)
	}
	steps, err := ListSteps(root)
	if err != nil {
		return nil, err
	}
	if len(steps) <= keep {
		return nil, nil
	}
	doomed := steps[:len(steps)-keep]
	for _, step := range doomed {
		if err := os.RemoveAll(StepDir(root, step)); err != nil {
			return nil, fmt.Errorf("ckpt: pruning step %d: %w", step, err)
		}
	}
	return append([]int(nil), doomed...), nil
}
