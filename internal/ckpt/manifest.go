package ckpt

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the manifest file inside a checkpoint directory. It is
// written after every shard file, so its presence marks the checkpoint
// complete.
const ManifestName = "MANIFEST.json"

// Well-known Manifest.Meta keys. The ckpt format treats Meta as opaque;
// these names are the convention shared by the writers (internal/train) and
// the readers (internal/serve, cmd/dchag-train) so a checkpoint is
// self-describing across binaries.
const (
	// MetaStage fingerprints the architecture family the checkpoint was
	// saved from ("dchag" or "serial").
	MetaStage = "stage"
	// MetaArch holds the JSON-encoded model.Arch of the saved model, letting
	// inference tooling rebuild the architecture without out-of-band
	// configuration.
	MetaArch = "arch"
)

// Manifest is the checkpoint directory's index: the format version, the
// saving topology, the training progress, and the shard file list. It is
// JSON so operators can inspect checkpoints without tooling.
type Manifest struct {
	// Format is the checkpoint layout version (ckpt.Format).
	Format string `json:"format"`
	// World is the number of ranks that saved (== number of shard files).
	World int `json:"world"`
	// Partitions is the logical D-CHAG channel-partition count of the saved
	// model; restoring at q ranks requires q to divide it. 1 for models
	// without channel sharding.
	Partitions int `json:"partitions"`
	// Step is the number of completed optimizer steps at save time; resume
	// continues from here.
	Step int `json:"step"`
	// OptAlgo names the optimizer family whose state the shards carry
	// (empty when none was saved).
	OptAlgo string `json:"opt_algo,omitempty"`
	// Meta carries caller-defined key/value pairs (e.g. an architecture
	// fingerprint validated on load).
	Meta map[string]string `json:"meta,omitempty"`
	// Shards lists the shard files, indexed by saving rank.
	Shards []string `json:"shards"`
}

// ShardFile returns the conventional shard file name for a rank.
func ShardFile(rank int) string { return fmt.Sprintf("shard-%04d.gob", rank) }

// WriteShard serializes tree as dir's shard file for the given rank,
// creating the directory if needed. The write is atomic (temp file +
// rename), so a crash mid-write cannot corrupt a previous checkpoint in the
// same directory.
func WriteShard(dir string, rank int, tree Tree) error {
	if tree.Format == "" {
		tree.Format = Format
	}
	if tree.Format != Format {
		return fmt.Errorf("ckpt: cannot write shard with format %q (want %q)", tree.Format, Format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: creating checkpoint directory: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ShardFile(rank)), func(f *os.File) error {
		return gob.NewEncoder(f).Encode(tree)
	})
}

// WriteManifest writes dir's manifest, filling Format and Shards from World
// when unset. Call it only after every shard file has been written: the
// manifest's presence is the checkpoint's commit point.
func WriteManifest(dir string, m Manifest) error {
	if m.Format == "" {
		m.Format = Format
	}
	if m.Format != Format {
		return fmt.Errorf("ckpt: cannot write manifest with format %q (want %q)", m.Format, Format)
	}
	if m.World < 1 {
		return fmt.Errorf("ckpt: manifest world %d must be positive", m.World)
	}
	if m.Partitions < 1 {
		m.Partitions = 1
	}
	if m.Shards == nil {
		for r := 0; r < m.World; r++ {
			m.Shards = append(m.Shards, ShardFile(r))
		}
	}
	if len(m.Shards) != m.World {
		return fmt.Errorf("ckpt: manifest lists %d shards for world %d", len(m.Shards), m.World)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: creating checkpoint directory: %w", err)
	}
	return atomicWrite(filepath.Join(dir, ManifestName), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest loads and validates dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("ckpt: decoding manifest: %w", err)
	}
	if m.Format != Format {
		return Manifest{}, fmt.Errorf("ckpt: manifest format %q not supported (want %q)", m.Format, Format)
	}
	if m.World < 1 || len(m.Shards) != m.World {
		return Manifest{}, fmt.Errorf("ckpt: manifest world %d does not match %d shard files", m.World, len(m.Shards))
	}
	return m, nil
}

// readShard loads and validates one shard file.
func readShard(path string) (Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return Tree{}, fmt.Errorf("ckpt: opening shard: %w", err)
	}
	defer f.Close()
	var tree Tree
	if err := gob.NewDecoder(f).Decode(&tree); err != nil {
		return Tree{}, fmt.Errorf("ckpt: decoding shard %s: %w", filepath.Base(path), err)
	}
	if tree.Format != Format {
		return Tree{}, fmt.Errorf("ckpt: shard %s format %q not supported (want %q)", filepath.Base(path), tree.Format, Format)
	}
	return tree, nil
}

// atomicWrite writes via a temp file in the target's directory and renames
// it into place.
func atomicWrite(path string, write func(*os.File) error) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", base, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", base, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: committing %s: %w", base, err)
	}
	return nil
}
