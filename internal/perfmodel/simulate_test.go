package perfmodel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hw"
)

// Property tests tying the step-time simulator to the dist traffic
// classification: the simulator must price an axis intra-node exactly when
// dist classifies every group of that axis intra-node, and crossing a node
// boundary must always cost strictly more at equal group size.

// simSpecs enumerates strategy shapes whose placements exercise aligned,
// unaligned and node-striding groups.
func simSpecs() []Strategy {
	var out []Strategy
	for _, tp := range []int{1, 2, 4, 8, 16} {
		for _, fsdp := range []int{1, 2, 4} {
			for _, dp := range []int{1, 2, 4} {
				out = append(out, Strategy{
					Method: MethodDCHAG, TP: tp, FSDP: fsdp, DP: dp,
					Tree: 0, Kind: core.KindLinear,
				})
			}
		}
	}
	return out
}

func TestAxisPricingMatchesDistClassification(t *testing.T) {
	machine := hw.Frontier()
	for _, strat := range simSpecs() {
		spec := strat.Mesh()
		topo := DefaultTopology(machine, spec.World())
		mesh, err := dist.NewMesh(spec, topo)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		for _, a := range dist.Axes {
			allIntra := true
			for gid := 0; gid < mesh.GroupCount(a); gid++ {
				if !mesh.GroupIntraNode(a, gid) {
					allIntra = false
				}
				// The bridge's placement must agree with dist's own
				// member-based classification group by group.
				p := dist.GroupPlacement(spec, topo, a, gid)
				if p.IntraNode() != mesh.GroupIntraNode(a, gid) {
					t.Fatalf("%+v axis %s group %d: bridge intra=%v, dist intra=%v",
						spec, a, gid, p.IntraNode(), mesh.GroupIntraNode(a, gid))
				}
			}
			worst := dist.WorstAxisPlacement(spec, topo, a)
			bw, lat := machine.RingLink(worst)
			if allIntra {
				// Axes dist classifies fully intra-node must be priced using
				// only the intra-node link constants.
				if bw != machine.IntraBW || lat != machine.LatIntra {
					t.Fatalf("%+v axis %s: intra-node axis priced at bw=%v lat=%v", spec, a, bw, lat)
				}
			} else {
				if bw != machine.InterBWPerGPU || lat != machine.LatInter {
					t.Fatalf("%+v axis %s: inter-node axis priced at bw=%v lat=%v", spec, a, bw, lat)
				}
				// Inter-node groups must be strictly slower than an
				// equal-size intra-node group at equal bytes.
				n := len(worst)
				if !(machine.AllReduceTimeOn(worst, 1<<24) > machine.AllReduceTimeAt(n, 1<<24, true)) {
					t.Fatalf("%+v axis %s: inter-node ring not slower than equal-size intra ring", spec, a)
				}
			}
		}
	}
}

func TestAxisCommSecondsComposition(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(500)
	r := Analyze(shape, wl, Strategy{Method: MethodDCHAG, TP: 8, FSDP: 8, DP: 8, Kind: core.KindLinear}, machine, cal)
	var sum float64
	for _, v := range r.AxisCommSeconds {
		sum += v
	}
	if sum != r.CommSeconds {
		t.Fatalf("per-axis times must sum to CommSeconds: %v vs %v", sum, r.CommSeconds)
	}
	for _, a := range dist.Axes {
		if r.AxisCommSeconds[a] <= 0 {
			t.Fatalf("axis %s has extent > 1 but zero comm time", a)
		}
	}
	// Single-rank axes are silent.
	r1 := Analyze(shape, wl, Strategy{Method: MethodDCHAG, TP: 8, Kind: core.KindLinear}, machine, cal)
	if r1.AxisCommSeconds[dist.AxisFSDP] != 0 || r1.AxisCommSeconds[dist.AxisDP] != 0 {
		t.Fatal("degenerate axes must contribute no comm time")
	}
}

func TestAnalyzeOnRejectsOverfullTopology(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(256)
	strat := Strategy{Method: MethodDCHAG, TP: 8, DP: 4, Kind: core.KindLinear}
	if _, err := AnalyzeOn(shape, wl, strat, machine, dist.Frontier(2), cal); err == nil {
		t.Fatal("32 ranks on 2 nodes must be rejected")
	}
	if _, err := AnalyzeOn(shape, wl, strat, machine, dist.Topology{}, cal); err == nil {
		t.Fatal("malformed topology must be rejected")
	}
	if _, err := AnalyzeOn(shape, wl, strat, machine, dist.Frontier(4), cal); err != nil {
		t.Fatalf("exact-fit topology rejected: %v", err)
	}
}

func TestSpreadPlacementSlowsFSDP(t *testing.T) {
	// The same strategy on more nodes than it needs: with TP*FSDP = 16 the
	// FSDP axis crosses nodes either way, but a dense two-node placement
	// keeps TP intra-node while a one-rank-per-node topology would not.
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(256)
	strat := Strategy{Method: MethodDCHAG, TP: 2, FSDP: 2, Kind: core.KindLinear}
	dense, err := AnalyzeOn(shape, wl, strat, machine, dist.Frontier(1), cal)
	if err != nil {
		t.Fatal(err)
	}
	spread, err := AnalyzeOn(shape, wl, strat, machine, dist.Topology{Nodes: 4, GPUsPerNode: 1}, cal)
	if err != nil {
		t.Fatal(err)
	}
	if !(spread.AxisCommSeconds[dist.AxisTP] > dense.AxisCommSeconds[dist.AxisTP]) {
		t.Fatal("one-rank-per-node placement must slow the TP axis")
	}
	if !(spread.AxisCommSeconds[dist.AxisFSDP] > dense.AxisCommSeconds[dist.AxisFSDP]) {
		t.Fatal("one-rank-per-node placement must slow the FSDP axis")
	}
	if spread.ComputeSeconds != dense.ComputeSeconds {
		t.Fatal("placement must not change compute time")
	}
	// Per-node throughput divides by the nodes the world occupies: 1 on the
	// dense Frontier node, 4 on the one-rank-per-node topology.
	if !(dense.TFLOPsPerSecPerNode() > 3*spread.TFLOPsPerSecPerNode()) {
		t.Fatalf("spread placement must not inflate per-node throughput: dense %.1f spread %.1f",
			dense.TFLOPsPerSecPerNode(), spread.TFLOPsPerSecPerNode())
	}
}
