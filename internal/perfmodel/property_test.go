package perfmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// Property tests for the analytic model: structural invariants that must
// hold for any configuration, independent of calibration values.

func randomStrategy(rng interface {
	Intn(n int) int
}) Strategy {
	methods := []Method{MethodBaseline, MethodDistTok, MethodDCHAG}
	kinds := []core.LayerKind{core.KindCross, core.KindLinear}
	tps := []int{1, 2, 4, 8}
	return Strategy{
		Method: methods[rng.Intn(len(methods))],
		TP:     tps[rng.Intn(len(tps))],
		FSDP:   []int{1, 2}[rng.Intn(2)],
		DP:     []int{1, 2}[rng.Intn(2)],
		Tree:   []int{0, 2, 4}[rng.Intn(3)],
		Kind:   kinds[rng.Intn(len(kinds))],
	}
}

func TestMemoryMonotoneInChannels(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		shape := Shapes[[]string{"100M", "1B", "1.7B", "7B"}[rng.Intn(4)]]
		strat := randomStrategy(rng)
		if shape.Heads%strat.TP != 0 {
			strat.TP = 1
		}
		lo := Analyze(shape, ReferenceWorkload(128), strat, machine, cal).TotalMemBytes()
		hi := Analyze(shape, ReferenceWorkload(512), strat, machine, cal).TotalMemBytes()
		return hi > lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryMonotoneInBatch(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		shape := Shapes[[]string{"1B", "7B"}[rng.Intn(2)]]
		strat := randomStrategy(rng)
		if shape.Heads%strat.TP != 0 {
			strat.TP = 1
		}
		wl := ReferenceWorkload(256)
		wl.MicroBatch = 1
		m1 := Analyze(shape, wl, strat, machine, cal).TotalMemBytes()
		wl.MicroBatch = 4
		m4 := Analyze(shape, wl, strat, machine, cal).TotalMemBytes()
		return m4 > m1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTPReducesBaselineMemory(t *testing.T) {
	// For the baseline method, raising TP must never increase per-GPU
	// memory (everything it touches shrinks or stays constant).
	machine := hw.Frontier()
	cal := DefaultCalibration()
	for _, name := range []string{"1.7B", "7B", "26B"} {
		shape := Shapes[name]
		for _, ch := range []int{128, 512} {
			prev := Analyze(shape, ReferenceWorkload(ch), Strategy{Method: MethodBaseline, TP: 1}, machine, cal).TotalMemBytes()
			for tp := 2; tp <= 8; tp *= 2 {
				cur := Analyze(shape, ReferenceWorkload(ch), Strategy{Method: MethodBaseline, TP: tp}, machine, cal).TotalMemBytes()
				if cur > prev {
					t.Fatalf("%s@%d: memory rose from TP=%d to TP=%d (%.1f -> %.1f GiB)", name, ch, tp/2, tp, prev/(1<<30), cur/(1<<30))
				}
				prev = cur
			}
		}
	}
}

func TestFSDPShardsOnlyParameterState(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(256)
	one := Analyze(shape, wl, Strategy{Method: MethodBaseline, FSDP: 1}, machine, cal)
	four := Analyze(shape, wl, Strategy{Method: MethodBaseline, FSDP: 4}, machine, cal)
	for c := range Components {
		if one.ActBytes[c] != four.ActBytes[c] {
			t.Fatalf("FSDP must not change activation memory (component %d)", c)
		}
		if four.StateBytes[c] >= one.StateBytes[c] && one.StateBytes[c] > 0 {
			t.Fatalf("FSDP must shrink state memory (component %d)", c)
		}
	}
}

func TestDCHAGShrinksChannelStageNotViT(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(512)
	base := Analyze(shape, wl, Strategy{Method: MethodBaseline, TP: 8}, machine, cal)
	dchag := Analyze(shape, wl, Strategy{Method: MethodDCHAG, TP: 8, Kind: core.KindLinear}, machine, cal)
	if !(dchag.ComponentMemBytes(CompTok) < base.ComponentMemBytes(CompTok)) {
		t.Fatal("D-CHAG must shrink tokenization")
	}
	if !(dchag.ComponentMemBytes(CompAgg) < base.ComponentMemBytes(CompAgg)) {
		t.Fatal("D-CHAG must shrink aggregation")
	}
	if dchag.ActBytes[CompViT] != base.ActBytes[CompViT] {
		t.Fatal("D-CHAG must leave ViT activations untouched (it is complementary to TP)")
	}
}

func TestDeeperTreesShrinkCrossPartialScores(t *testing.T) {
	// For D-CHAG-C, deeper trees reduce aggregation activation memory (the
	// per-group quadratic term shrinks) while adding parameters — the
	// trade-off of paper Sec. 3.2.
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["1.7B"]
	wl := ReferenceWorkload(512)
	mk := func(tree int) Report {
		return Analyze(shape, wl, Strategy{Method: MethodDCHAG, TP: 2, Tree: tree, Kind: core.KindCross}, machine, cal)
	}
	t0, t8 := mk(0), mk(8)
	if !(t8.ActBytes[CompAgg] < t0.ActBytes[CompAgg]) {
		t.Fatalf("deeper tree must shrink aggregation activations: %.2f vs %.2f GiB", t8.ActBytes[CompAgg]/(1<<30), t0.ActBytes[CompAgg]/(1<<30))
	}
	if !(t8.ParamsPerGPU[CompAgg] > t0.ParamsPerGPU[CompAgg]) {
		t.Fatal("deeper tree must add parameters")
	}
}

func TestCommTimeGrowsAcrossNodeBoundary(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(256)
	intra := Analyze(shape, wl, Strategy{Method: MethodBaseline, TP: 8}, machine, cal).CommSeconds
	inter := Analyze(shape, wl, Strategy{Method: MethodBaseline, TP: 16}, machine, cal).CommSeconds
	if !(inter > intra) {
		t.Fatalf("TP across nodes must cost more comm time: %v vs %v", intra, inter)
	}
}

func TestUsefulThroughputBelowHardwareBound(t *testing.T) {
	// Baseline runs can never be credited more useful FLOPs/s per GPU than
	// the sustained hardware rate (they execute at least the useful work).
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	wl := ReferenceWorkload(500)
	wl.MicroBatch = 4
	r := Analyze(shape, wl, Strategy{Method: MethodBaseline, TP: 8, FSDP: 2}, machine, cal)
	perGPU := r.TFLOPsPerSec() * 1e12 / float64(r.Strat.World())
	if perGPU > machine.SustainedFLOPS() {
		t.Fatalf("baseline per-GPU useful rate %.1f TF/s exceeds sustained %.1f", perGPU/1e12, machine.SustainedFLOPS()/1e12)
	}
}

func TestMaxMicroBatchConsistentWithFits(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	strat := Strategy{Method: MethodDCHAG, TP: 4, Kind: core.KindLinear}
	wl := ReferenceWorkload(500)
	b := MaxMicroBatch(shape, wl, strat, machine, cal)
	if b < 1 {
		t.Fatal("expected a positive max micro-batch")
	}
	wl.MicroBatch = b
	if !Analyze(shape, wl, strat, machine, cal).Fits() {
		t.Fatal("max micro-batch must fit")
	}
	wl.MicroBatch = b + 1
	if Analyze(shape, wl, strat, machine, cal).Fits() {
		t.Fatal("max micro-batch + 1 must not fit")
	}
}
