package perfmodel

import (
	"testing"

	"repro/internal/core"
)

// TestPrintCalibrationTable prints the margin of every paper boundary point
// under the current calibration; run with -v when retuning constants. It
// never fails — the enforcing assertions live in calibration_test.go.
func TestPrintCalibrationTable(t *testing.T) {
	rows := []struct {
		label     string
		name      string
		ch, tp, f int
		method    Method
		wantFit   bool
	}{
		{"Fig6  100M@512  1GPU", "100M", 512, 1, 1, MethodBaseline, true},
		{"Fig6  100M@1024 1GPU", "100M", 1024, 1, 1, MethodBaseline, false},
		{"Fig6  1B@256    1GPU", "1B", 256, 1, 1, MethodBaseline, true},
		{"Fig6  1B@512    1GPU", "1B", 512, 1, 1, MethodBaseline, false},
		{"Fig6  3B@128    1GPU", "3B", 128, 1, 1, MethodBaseline, true},
		{"Fig6  3B@256    1GPU", "3B", 256, 1, 1, MethodBaseline, false},
		{"S4.3  1.7B@256  FSDP2", "1.7B", 256, 1, 2, MethodBaseline, true},
		{"S4.3  1.7B@512  FSDP2", "1.7B", 512, 1, 2, MethodBaseline, false},
		{"S4.3  7B@128    FSDP8", "7B", 128, 1, 8, MethodBaseline, true},
		{"S6.1  7B@256    FSDP8", "7B", 256, 1, 8, MethodBaseline, false},
		{"S6.1  15B@64    FSDP8", "15B", 64, 1, 8, MethodBaseline, true},
		{"S6.1  15B@128   FSDP8", "15B", 128, 1, 8, MethodBaseline, false},
		{"S6.1  26B@8     FSDP8", "26B", 8, 1, 8, MethodBaseline, false},
		{"Fig7  1.7B@512  TP2", "1.7B", 512, 2, 1, MethodBaseline, true},
		{"Fig7  1.7B@1024 TP8", "1.7B", 1024, 8, 1, MethodBaseline, true},
		{"Fig7  1.7B@1024 TP4", "1.7B", 1024, 4, 1, MethodBaseline, false},
		{"Fig7  7B@256    TP4", "7B", 256, 4, 1, MethodBaseline, true},
		{"Fig7  7B@512    TP16", "7B", 512, 16, 1, MethodBaseline, true},
		{"Fig7  7B@512    TP4", "7B", 512, 4, 1, MethodBaseline, false},
		{"F14   26B@256   TP8", "26B", 256, 8, 1, MethodBaseline, false},
		{"F14   26B@256   TP16", "26B", 256, 16, 1, MethodBaseline, false},
		{"F14   26B@256   TP32", "26B", 256, 32, 1, MethodBaseline, false},
	}
	for _, row := range rows {
		wl := ReferenceWorkload(row.ch)
		r := AnalyzeDefault(Shapes[row.name], wl, Strategy{Method: row.method, TP: row.tp, FSDP: row.f, Kind: core.KindLinear})
		mark := "OK  "
		if r.Fits() != row.wantFit {
			mark = "MISS"
		}
		t.Logf("%s %-22s total %6.1f GiB (budget %.1f) fits=%-5v want=%-5v [tok %.1f agg %.1f vit %.1f head %.1f]",
			mark, row.label, r.TotalMemBytes()/(1<<30), float64(r.Machine.UsableMemBytes())/(1<<30),
			r.Fits(), row.wantFit,
			r.ComponentMemBytes(CompTok)/(1<<30), r.ComponentMemBytes(CompAgg)/(1<<30),
			r.ComponentMemBytes(CompViT)/(1<<30), r.ComponentMemBytes(CompHead)/(1<<30))
	}
}
