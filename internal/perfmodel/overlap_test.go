package perfmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// Property tests for the overlap composition model (ISSUE satellite):
// structural invariants that must hold for any shape, topology, and overlap
// factors — independent of the calibrated values.

// randomCase draws a random (shape, workload, strategy, topology) tuple
// whose world fits the topology. Topologies range from dense Frontier
// packing to spread placements so axes land both intra- and inter-node.
func randomCase(rng *rand.Rand) (ModelShape, Workload, Strategy, dist.Topology) {
	shape := Shapes[[]string{"100M", "1B", "1.7B", "7B"}[rng.Intn(4)]]
	strat := randomStrategy(rng)
	if shape.Heads%strat.TP != 0 {
		strat.TP = 1
	}
	wl := ReferenceWorkload([]int{128, 256, 512}[rng.Intn(3)])
	wl.MicroBatch = 1 + rng.Intn(4)
	world := strat.World()
	var topo dist.Topology
	switch rng.Intn(3) {
	case 0: // dense Frontier packing
		topo = DefaultTopology(hw.Frontier(), world)
	case 1: // wide nodes: everything intra-node
		topo = dist.Topology{Nodes: 1, GPUsPerNode: world}
	default: // spread: one rank per node, everything inter-node
		topo = dist.Topology{Nodes: world, GPUsPerNode: 1}
	}
	return shape, wl, strat, topo
}

func analyzeWith(t *testing.T, shape ModelShape, wl Workload, strat Strategy, topo dist.Topology, cal Calibration) Report {
	t.Helper()
	r, err := AnalyzeOn(shape, wl, strat, hw.Frontier(), topo, cal)
	if err != nil {
		t.Fatalf("AnalyzeOn(%+v on %+v): %v", strat, topo, err)
	}
	return r
}

func TestOverlapZeroFactorIsSerialBitForBit(t *testing.T) {
	// Overlap factor 0 must reproduce the pre-overlap serial numbers
	// bit-for-bit: exposed == comm per axis and step == compute + comm,
	// with float equality, not tolerance.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		shape, wl, strat, topo := randomCase(rng)
		r := analyzeWith(t, shape, wl, strat, topo, SerialCalibration())
		if r.AxisExposedSeconds != r.AxisCommSeconds {
			return false
		}
		if r.ExposedCommSeconds != r.CommSeconds {
			return false
		}
		return r.StepSeconds() == r.SerialStepSeconds() &&
			r.StepSeconds() == r.ComputeSeconds+r.CommSeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapStepBounds(t *testing.T) {
	// For random shapes/topologies and random factors, the overlapped step
	// time is >= max(compute, total comm) and <= the serial composition,
	// and every axis's exposed time stays within [0, its comm time].
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		shape, wl, strat, topo := randomCase(rng)
		cal := DefaultCalibration()
		cal.Overlap = Overlap{
			FSDP: float64(rng.Intn(101)) / 100,
			DP:   float64(rng.Intn(101)) / 100,
		}
		r := analyzeWith(t, shape, wl, strat, topo, cal)
		step, serial := r.StepSeconds(), r.SerialStepSeconds()
		if step > serial+1e-12 {
			t.Logf("step %v exceeds serial %v (%+v)", step, serial, strat)
			return false
		}
		lower := r.ComputeSeconds
		if r.CommSeconds > lower {
			lower = r.CommSeconds
		}
		if step < lower-1e-12 {
			t.Logf("step %v below max(compute %v, comm %v) (%+v)", step, r.ComputeSeconds, r.CommSeconds, strat)
			return false
		}
		for _, a := range dist.Axes {
			if r.AxisExposedSeconds[a] < 0 || r.AxisExposedSeconds[a] > r.AxisCommSeconds[a]+1e-12 {
				t.Logf("axis %s exposed %v outside [0, %v]", a, r.AxisExposedSeconds[a], r.AxisCommSeconds[a])
				return false
			}
		}
		// TP is on the critical path under every factor choice.
		return r.AxisExposedSeconds[dist.AxisTP] == r.AxisCommSeconds[dist.AxisTP]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapExposedMonotoneInFactor(t *testing.T) {
	// Exposed comm is monotonically non-increasing in each overlap factor:
	// raising a factor can only hide more (or hit its window/budget cap),
	// both per axis and in total.
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		shape, wl, strat, topo := randomCase(rng)
		base := DefaultCalibration()
		steps := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
		// Sweep the FSDP factor at a fixed random DP factor, then vice
		// versa.
		otherDP := float64(rng.Intn(101)) / 100
		prevAxis, prevTotal := -1.0, -1.0
		for _, fv := range steps {
			cal := base
			cal.Overlap = Overlap{FSDP: fv, DP: otherDP}
			r := analyzeWith(t, shape, wl, strat, topo, cal)
			if prevAxis >= 0 && r.AxisExposedSeconds[dist.AxisFSDP] > prevAxis+1e-12 {
				return false
			}
			if prevTotal >= 0 && r.ExposedCommSeconds > prevTotal+1e-12 {
				return false
			}
			prevAxis, prevTotal = r.AxisExposedSeconds[dist.AxisFSDP], r.ExposedCommSeconds
		}
		otherFSDP := float64(rng.Intn(101)) / 100
		prevAxis, prevTotal = -1.0, -1.0
		for _, fv := range steps {
			cal := base
			cal.Overlap = Overlap{FSDP: otherFSDP, DP: fv}
			r := analyzeWith(t, shape, wl, strat, topo, cal)
			if prevAxis >= 0 && r.AxisExposedSeconds[dist.AxisDP] > prevAxis+1e-12 {
				return false
			}
			if prevTotal >= 0 && r.ExposedCommSeconds > prevTotal+1e-12 {
				return false
			}
			prevAxis, prevTotal = r.AxisExposedSeconds[dist.AxisDP], r.ExposedCommSeconds
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapBudgetSharedAcrossAxes(t *testing.T) {
	// The hidden time across all axes can never exceed the compute budget:
	// comm hiding is a shared resource, not per-axis. Exercised where comm
	// dwarfs compute (spread topology, large FSDP/DP factors).
	shape := Shapes["7B"]
	wl := ReferenceWorkload(500)
	wl.MicroBatch = 1
	strat := Strategy{Method: MethodDCHAG, TP: 2, FSDP: 4, DP: 2, Kind: core.KindLinear}
	topo := dist.Topology{Nodes: 16, GPUsPerNode: 1}
	cal := DefaultCalibration()
	cal.Overlap = Overlap{FSDP: 1, DP: 1}
	r := analyzeWith(t, shape, wl, strat, topo, cal)
	hidden := r.CommSeconds - r.ExposedCommSeconds
	if hidden > r.ComputeSeconds+1e-12 {
		t.Fatalf("hidden comm %v exceeds the compute budget %v", hidden, r.ComputeSeconds)
	}
	if r.StepSeconds() < r.CommSeconds-1e-12 {
		t.Fatalf("step %v below total comm %v: overlap invented bandwidth", r.StepSeconds(), r.CommSeconds)
	}
}
