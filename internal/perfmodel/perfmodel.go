// Package perfmodel is the analytic performance layer of the reproduction:
// it accounts, per GPU and per component (tokenization, channel aggregation,
// transformer blocks, head), for parameters, activation memory, floating-
// point work, and communication under every strategy the paper evaluates —
// single GPU, FSDP, TP, TP with distributed tokenization (Sec. 3.1), and
// D-CHAG combined with TP/FSDP/DP (Secs. 3.3-3.4).
//
// It is the substitution for running on Frontier (DESIGN.md): the memory
// and throughput figures (paper Figs. 6-9 and 13-16) are regenerated from
// these formulas on the internal/hw machine model. The calibration constants
// are fitted so that the paper's published feasibility boundaries hold (what
// fits at which TP degree — see the package tests); the experiments then
// compare shapes, not absolute numbers.
package perfmodel

import (
	"fmt"

	"repro/internal/core"
)

// ModelShape is a transformer size point from the paper's evaluation.
type ModelShape struct {
	Name   string
	Embed  int
	Layers int
	Heads  int
}

// ViTParams returns the transformer-block parameter count (12*E^2 per block
// plus norms).
func (s ModelShape) ViTParams() float64 {
	e := float64(s.Embed)
	return float64(s.Layers) * (12*e*e + 4*e)
}

// Shapes catalogs the paper's model sizes. The 7B/15B/26B entries use the
// paper's explicit dimensions (Sec. 6.1); the others are standard ViT
// scalings consistent with the stated parameter counts.
var Shapes = map[string]ModelShape{
	"100M": {Name: "100M", Embed: 768, Layers: 12, Heads: 12},
	"1B":   {Name: "1B", Embed: 2048, Layers: 24, Heads: 16},
	"1.7B": {Name: "1.7B", Embed: 2304, Layers: 28, Heads: 24},
	"3B":   {Name: "3B", Embed: 2816, Layers: 32, Heads: 22},
	"7B":   {Name: "7B", Embed: 4096, Layers: 32, Heads: 32},
	"15B":  {Name: "15B", Embed: 6144, Layers: 32, Heads: 32},
	"26B":  {Name: "26B", Embed: 8192, Layers: 32, Heads: 32},
}

// Workload describes the data side of a run.
type Workload struct {
	Channels          int
	ImgH, ImgW, Patch int
	// MicroBatch is the per-replica batch size.
	MicroBatch int
}

// Tokens returns the spatial token count.
func (w Workload) Tokens() int { return (w.ImgH / w.Patch) * (w.ImgW / w.Patch) }

// ReferenceWorkload is the calibrated workload behind the memory studies:
// 512x512 scientific images, patch 16 (1024 tokens), micro-batch 4.
func ReferenceWorkload(channels int) Workload {
	return Workload{Channels: channels, ImgH: 512, ImgW: 512, Patch: 16, MicroBatch: 4}
}

// Method selects the channel-stage strategy.
type Method int

// Channel-stage strategies from the paper.
const (
	// MethodBaseline is plain (optionally TP-sharded) tokenization of all
	// channels on every rank plus one cross-attention aggregation layer —
	// the paper's TP baseline (Sec. 4.3).
	MethodBaseline Method = iota
	// MethodDistTok is distributed tokenization alone (Sec. 3.1): channel
	// shards are tokenized locally and AllGathered in full.
	MethodDistTok
	// MethodDCHAG is the full D-CHAG stage (Sec. 3.3).
	MethodDCHAG
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case MethodBaseline:
		return "TP-baseline"
	case MethodDistTok:
		return "Dist-Tok"
	case MethodDCHAG:
		return "D-CHAG"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Strategy is a full parallel configuration: the channel-stage method plus
// the TP/FSDP/DP factorization of Sec. 3.4 (TP groups are also the D-CHAG
// groups).
type Strategy struct {
	Method Method
	TP     int
	FSDP   int
	DP     int
	// Tree and Kind configure the D-CHAG partial-channel aggregation module
	// (paper Fig. 9): Tree0/2/4/8..., -C or -L.
	Tree int
	Kind core.LayerKind
}

// World returns the GPU count of the configuration.
func (s Strategy) World() int { return s.tp() * s.fsdp() * s.dp() }

func (s Strategy) tp() int {
	if s.TP < 1 {
		return 1
	}
	return s.TP
}
func (s Strategy) fsdp() int {
	if s.FSDP < 1 {
		return 1
	}
	return s.FSDP
}
func (s Strategy) dp() int {
	if s.DP < 1 {
		return 1
	}
	return s.DP
}

// Label renders the strategy the way the paper labels configurations, e.g.
// "D-CHAG-L-Tree0 TP=2 FSDP=4 DP=8".
func (s Strategy) Label() string {
	name := s.Method.String()
	if s.Method == MethodDCHAG {
		name = fmt.Sprintf("D-CHAG-%s-Tree%d", s.Kind, s.Tree)
	}
	out := fmt.Sprintf("%s TP=%d", name, s.tp())
	if s.fsdp() > 1 {
		out += fmt.Sprintf(" FSDP=%d", s.fsdp())
	}
	if s.dp() > 1 {
		out += fmt.Sprintf(" DP=%d", s.dp())
	}
	return out
}

// Calibration holds the fitted constants of the memory/compute model. See
// the package comment; the defaults are validated against the paper's
// feasibility boundaries in the tests.
type Calibration struct {
	// DtypeBytes is the training dtype width (bf16).
	DtypeBytes float64
	// StateBytesPerParam covers weight + gradient + Adam moments.
	StateBytesPerParam float64
	// CTokens counts live copies of the channel-token tensor [B,C,T,E]
	// (tokenizer output, channel-embedding output).
	CTokens float64
	// CQKV counts live q/k/v/context projections inside attention-based
	// aggregation, sharded by TP over the embedding dimension.
	CQKV float64
	// CScore counts stored attention-map bytes per channel pair per local
	// attention head (softmax input + output), the quadratic-in-channels
	// term of Sec. 3.2. TP shards heads, not the channel dimension, so the
	// per-rank term scales with heads/TP.
	CScore float64
	// CTokWork covers tokenizer workspace (im2col patches).
	CTokWork float64
	// VitActBytesPerToken is stored transformer activation bytes per token
	// per layer (flash-attention regime, no T^2 term).
	VitActBytesPerToken float64
	// VitReplFrac is the fraction of ViT activations replicated across TP
	// ranks (norms, residuals) rather than sharded.
	VitReplFrac float64
	// AggProjFactor is the number of E^2-cost projections applied per
	// channel token inside attention-based aggregation. Fitted so the
	// channel stage holds the paper's Fig. 6 "majority of compute" share
	// (50-70%) rather than dwarfing the transformer.
	AggProjFactor float64
	// Overlap holds the per-axis comm/compute overlap factors of the
	// step-time composition (see overlap.go). The zero value disables
	// overlap: step time is then the serial compute + total-comm
	// composition, bit-for-bit.
	Overlap Overlap
}

// DefaultCalibration returns the fitted constants.
func DefaultCalibration() Calibration {
	return Calibration{
		DtypeBytes:          2,
		StateBytesPerParam:  12, // bf16 weight+grad, fp32 Adam moments
		CTokens:             1.2,
		CQKV:                3,
		CScore:              0.4,
		CTokWork:            2,
		VitActBytesPerToken: 24,
		VitReplFrac:         0.3,
		AggProjFactor:       1,
		Overlap:             DefaultOverlap(),
	}
}

// SerialCalibration returns the fitted constants with overlap disabled —
// the pre-overlap serial composition, kept as the -no-overlap escape hatch
// and the baseline the overlap property tests compare against.
func SerialCalibration() Calibration {
	cal := DefaultCalibration()
	cal.Overlap = Overlap{}
	return cal
}

// localChannels returns ceil(c/t), the per-rank channel shard width.
func localChannels(c, t int) int { return (c + t - 1) / t }
