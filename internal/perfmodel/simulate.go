package perfmodel

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/hw"
)

// The topology-aware step-time simulator: each mesh axis of a strategy is
// converted into concrete rank placements via the dist→hw bridge, every
// collective of the training step is priced on its axis's worst placement
// (groups of one axis run in lockstep, so the slowest group gates the
// step), each axis's overlap discipline (overlap.go) hides what it can
// behind compute, and the exposed per-axis times compose with compute into
// the simulated step time. This is what makes TP=8 vs TP=16 a cliff rather
// than a slope: the moment a TP group's ring crosses a node boundary,
// every per-layer AllReduce reprices from Infinity Fabric to the Slingshot
// share — and TP time is on the critical path, so no overlap softens it.

// Mesh returns the strategy's TP×FSDP×DP shape as a dist mesh spec.
func (s Strategy) Mesh() dist.MeshSpec {
	return dist.MeshSpec{TP: s.tp(), FSDP: s.fsdp(), DP: s.dp()}
}

// DefaultTopology returns the densest placement of the strategy's world on
// the machine: world ranks packed onto ceil(world/GPUsPerNode) nodes.
func DefaultTopology(machine hw.Machine, world int) dist.Topology {
	return dist.Topology{Nodes: machine.Nodes(world), GPUsPerNode: machine.GPUsPerNode}
}

// AnalyzeOn evaluates the analytic model for one configuration placed on an
// explicit topology. It fails when the strategy's world does not fit the
// topology or the topology is malformed.
func AnalyzeOn(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, topo dist.Topology, cal Calibration) (Report, error) {
	if err := topo.Validate(); err != nil {
		return Report{}, err
	}
	spec := strat.Mesh()
	if spec.World() > topo.GCDs() {
		return Report{}, fmt.Errorf("perfmodel: strategy world %d exceeds topology capacity %d (%d nodes x %d GCDs)",
			spec.World(), topo.GCDs(), topo.Nodes, topo.GPUsPerNode)
	}
	r := Report{Shape: shape, Work: wl, Strat: strat, Machine: machine, Topo: topo}
	r.ParamsPerGPU = paramsPerGPU(shape, wl, strat)
	for c := 0; c < int(numComponents); c++ {
		r.StateBytes[c] = r.ParamsPerGPU[c] * cal.StateBytesPerParam / float64(strat.fsdp())
	}
	r.ActBytes = actBytes(shape, wl, strat, cal)
	r.FwdFLOPs = fwdFLOPs(shape, wl, strat, cal)
	var fwd float64
	for _, f := range r.FwdFLOPs {
		fwd += f
	}
	r.ComputeSeconds = machine.ComputeTime(3 * fwd)
	r.AxisCommSeconds = axisCommSeconds(shape, wl, strat, machine, topo, cal)
	for _, t := range r.AxisCommSeconds {
		r.CommSeconds += t
	}
	r.AxisExposedSeconds = cal.Overlap.Expose(r.ComputeSeconds, r.AxisCommSeconds)
	for _, t := range r.AxisExposedSeconds {
		r.ExposedCommSeconds += t
	}
	return r, nil
}

// axisCommSeconds prices the per-step collectives of each mesh axis on that
// axis's worst-placed group.
func axisCommSeconds(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, topo dist.Topology, cal Calibration) [dist.NumAxes]float64 {
	var out [dist.NumAxes]float64
	spec := strat.Mesh()
	d := cal.DtypeBytes
	e := float64(shape.Embed)
	b := float64(wl.MicroBatch)
	tt := float64(wl.Tokens())
	actBT := int64(d * b * tt * e)

	if t := strat.tp(); t > 1 {
		p := dist.WorstAxisPlacement(spec, topo, dist.AxisTP)
		tpTime := 0.0
		// ViT TP: two AllReduces forward and two backward per layer.
		tpTime += float64(4*shape.Layers) * machine.AllReduceTimeOn(p, actBT)
		switch strat.Method {
		case MethodBaseline:
			// Row-parallel aggregation output AllReduce: the reduced
			// representation is one token per spatial location.
			tpTime += 2 * machine.AllReduceTimeOn(p, actBT)
		case MethodDistTok:
			tpTime += 2 * machine.AllReduceTimeOn(p, actBT)
			// Full channel+spatial AllGather (the Sec. 3.1 overhead).
			cl := float64(localChannels(wl.Channels, t))
			tpTime += machine.AllGatherTimeOn(p, int64(d*b*tt*cl*e))
		case MethodDCHAG:
			// One token per rank forward, nothing backward (Sec. 3.3).
			tpTime += machine.AllGatherTimeOn(p, actBT)
			tpTime += 2 * machine.AllReduceTimeOn(p, actBT) // final layer TP reduce
		}
		out[dist.AxisTP] = tpTime
	}

	// FSDP parameter gathers (fwd + bwd) and gradient reduce-scatter.
	if f := strat.fsdp(); f > 1 {
		p := dist.WorstAxisPlacement(spec, topo, dist.AxisFSDP)
		bytes := int64(totalParamsPerGPU(shape, wl, strat) * d)
		out[dist.AxisFSDP] = 2*machine.AllGatherTimeOn(p, bytes/int64(f)) +
			machine.ReduceScatterTimeOn(p, bytes)
	}

	// DP gradient AllReduce at the end of the backward pass.
	if strat.dp() > 1 {
		p := dist.WorstAxisPlacement(spec, topo, dist.AxisDP)
		bytes := int64(totalParamsPerGPU(shape, wl, strat) * d)
		out[dist.AxisDP] = machine.AllReduceTimeOn(p, bytes)
	}
	return out
}

// totalParamsPerGPU sums the per-component per-GPU parameter counts.
func totalParamsPerGPU(shape ModelShape, wl Workload, strat Strategy) float64 {
	var params float64
	for _, p := range paramsPerGPU(shape, wl, strat) {
		params += p
	}
	return params
}
