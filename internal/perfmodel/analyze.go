package perfmodel

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hw"
)

// Component identifies a part of the model in the per-component breakdowns,
// matching the decomposition of the paper's Figs. 6-8 and 14.
type Component int

// Components of the architecture.
const (
	CompTok  Component = iota // tokenization (patch embed + channel IDs)
	CompAgg                   // channel aggregation (incl. gather buffers)
	CompViT                   // transformer blocks
	CompHead                  // head / decoder (+ positional table)
	numComponents
)

// String names the component.
func (c Component) String() string {
	switch c {
	case CompTok:
		return "tokenization"
	case CompAgg:
		return "aggregation"
	case CompViT:
		return "transformer"
	case CompHead:
		return "head"
	default:
		return "unknown"
	}
}

// Components lists all components in display order.
var Components = []Component{CompTok, CompAgg, CompViT, CompHead}

// Report is the full analytic result for one (shape, workload, strategy)
// configuration on one machine.
type Report struct {
	Shape   ModelShape
	Work    Workload
	Strat   Strategy
	Machine hw.Machine
	// Topo is the physical placement the communication times were priced
	// on (ranks packed densely, TP innermost — see internal/dist).
	Topo dist.Topology

	// ParamsPerGPU[c] is the per-GPU parameter count of component c (before
	// FSDP sharding of optimizer state).
	ParamsPerGPU [numComponents]float64
	// ActBytes[c] is the per-GPU activation memory of component c.
	ActBytes [numComponents]float64
	// StateBytes[c] is the per-GPU parameter/gradient/optimizer memory of
	// component c after FSDP sharding.
	StateBytes [numComponents]float64

	// FwdFLOPs[c] is the forward floating-point work per GPU per step.
	FwdFLOPs [numComponents]float64

	// CommSeconds is the per-step total communication time; ComputeSeconds
	// the per-step math time (forward+backward).
	CommSeconds    float64
	ComputeSeconds float64
	// AxisCommSeconds splits CommSeconds by mesh axis (indexed by
	// dist.Axis): TP collectives, FSDP parameter traffic, DP gradient
	// AllReduce. Each axis is priced on its worst-placed group's ring.
	AxisCommSeconds [dist.NumAxes]float64
	// AxisExposedSeconds is the per-axis communication time left on the
	// critical path after each axis's overlap discipline (overlap.go) hides
	// what it can behind compute; ExposedCommSeconds is the sum. With the
	// calibration's zero Overlap these equal AxisCommSeconds/CommSeconds.
	AxisExposedSeconds [dist.NumAxes]float64
	ExposedCommSeconds float64
}

// TotalMemBytes returns the per-GPU memory footprint.
func (r Report) TotalMemBytes() float64 {
	total := 0.0
	for c := 0; c < int(numComponents); c++ {
		total += r.ActBytes[c] + r.StateBytes[c]
	}
	return total
}

// ComponentMemBytes returns activation+state memory for one component.
func (r Report) ComponentMemBytes(c Component) float64 {
	return r.ActBytes[c] + r.StateBytes[c]
}

// MemFraction returns the footprint normalized to usable GPU memory (the
// normalization of the paper's Figs. 6, 7, 14).
func (r Report) MemFraction() float64 {
	return r.TotalMemBytes() / float64(r.Machine.UsableMemBytes())
}

// Fits reports whether the configuration avoids OOM.
func (r Report) Fits() bool { return r.TotalMemBytes() <= float64(r.Machine.UsableMemBytes()) }

// StepSeconds is the modeled wall time of one training step: compute plus
// the communication left exposed after overlap. Under a zero Overlap
// calibration this equals SerialStepSeconds bit-for-bit.
func (r Report) StepSeconds() float64 { return r.ComputeSeconds + r.ExposedCommSeconds }

// SerialStepSeconds is the overlap-free composition — compute plus every
// collective serialized — kept for pessimistic bounds and for comparing
// against pre-overlap (sweep/v1) trajectory points.
func (r Report) SerialStepSeconds() float64 { return r.ComputeSeconds + r.CommSeconds }

// SamplesPerStep returns the global batch processed per step (FSDP and DP
// groups each process distinct data).
func (r Report) SamplesPerStep() float64 {
	return float64(r.Work.MicroBatch * r.Strat.fsdp() * r.Strat.dp())
}

// UsefulFLOPsPerSample returns the serial baseline model's fwd+bwd FLOPs for
// one sample — the work the paper's TFLOPs/sec throughput counts, identical
// across strategies so throughput ratios equal speed ratios.
func (r Report) UsefulFLOPsPerSample() float64 {
	serial := Strategy{Method: MethodBaseline}
	wl := r.Work
	wl.MicroBatch = 1
	var f float64
	for _, fl := range fwdFLOPs(r.Shape, wl, serial, DefaultCalibration()) {
		f += fl
	}
	return 3 * f
}

// TFLOPsPerSec returns the modeled sustained useful throughput of the whole
// job (the metric of the paper's Fig. 16).
func (r Report) TFLOPsPerSec() float64 {
	return r.UsefulFLOPsPerSample() * r.SamplesPerStep() / r.StepSeconds() / 1e12
}

// TFLOPsPerSecPerNode normalizes throughput per occupied node of the
// report's topology (paper Fig. 15). Ranks are packed densely, so a world
// occupies ceil(world/GPUsPerNode) nodes even when the topology has more.
func (r Report) TFLOPsPerSecPerNode() float64 {
	perNode := r.Topo.GPUsPerNode
	if perNode < 1 {
		// Zero-value Topo (report not built by AnalyzeOn): fall back to the
		// machine's node width.
		perNode = r.Machine.GPUsPerNode
	}
	nodes := float64((r.Strat.World() + perNode - 1) / perNode)
	return r.TFLOPsPerSec() / nodes
}

// Analyze evaluates the analytic model for one configuration, placing its
// world densely on the machine (ceil(world/GPUsPerNode) nodes). Callers
// with an explicit node count use AnalyzeOn.
func Analyze(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, cal Calibration) Report {
	r, err := AnalyzeOn(shape, wl, strat, machine, DefaultTopology(machine, strat.World()), cal)
	if err != nil {
		// Unreachable: the default topology always fits the world.
		panic(err)
	}
	return r
}

// AnalyzeDefault runs Analyze on Frontier with the default calibration.
func AnalyzeDefault(shape ModelShape, wl Workload, strat Strategy) Report {
	return Analyze(shape, wl, strat, hw.Frontier(), DefaultCalibration())
}

// paramsPerGPU computes per-component per-GPU parameter counts.
func paramsPerGPU(shape ModelShape, wl Workload, strat Strategy) [numComponents]float64 {
	var out [numComponents]float64
	e := float64(shape.Embed)
	t := float64(strat.tp())
	c := float64(wl.Channels)
	pp := float64(wl.Patch * wl.Patch)
	tok := func(channels float64) float64 { return channels * (pp*e + e + e) } // conv + bias + channel ID

	switch strat.Method {
	case MethodBaseline:
		out[CompTok] = tok(c) // replicated across TP ranks (the paper's Fig. 2 top)
		out[CompAgg] = 4 * e * e / t
	case MethodDistTok:
		out[CompTok] = tok(float64(localChannels(wl.Channels, strat.tp())))
		out[CompAgg] = 4 * e * e / t
	case MethodDCHAG:
		cl := float64(localChannels(wl.Channels, strat.tp()))
		out[CompTok] = tok(cl)
		plan := core.BuildTreePlan(localChannels(wl.Channels, strat.tp()), strat.Tree)
		layers := float64(plan.NumLayers())
		if strat.Kind == core.KindCross {
			out[CompAgg] = layers * 4 * e * e // per-rank local, full embed
		} else {
			out[CompAgg] = cl + layers*e // linear mixing weights + biases
		}
		out[CompAgg] += 4 * e * e / t // final shared layer, TP-sharded
	}
	out[CompViT] = shape.ViTParams() / t
	out[CompHead] = e*c*pp/t + float64(wl.Tokens())*e
	return out
}

// actBytes computes per-component per-GPU activation memory.
func actBytes(shape ModelShape, wl Workload, strat Strategy, cal Calibration) [numComponents]float64 {
	var out [numComponents]float64
	d := cal.DtypeBytes
	e := float64(shape.Embed)
	b := float64(wl.MicroBatch)
	tt := float64(wl.Tokens())
	c := float64(wl.Channels)
	t := float64(strat.tp())
	pp := float64(wl.Patch * wl.Patch)
	bt := d * b * tt
	// Attention maps are stored per local head; TP shards heads, never the
	// channel dimension (the limitation D-CHAG exists to fix).
	hLocal := float64(shape.Heads) / t
	if hLocal < 1 {
		hLocal = 1
	}

	input := func(channels float64) float64 {
		return d * b * channels * float64(wl.ImgH*wl.ImgW)
	}

	switch strat.Method {
	case MethodBaseline:
		out[CompTok] = bt*c*e*cal.CTokens + bt*c*pp*cal.CTokWork + input(c)
		out[CompAgg] = bt*c*e*cal.CQKV/t + bt*c*c*cal.CScore*hLocal
	case MethodDistTok:
		cl := float64(localChannels(wl.Channels, strat.tp()))
		out[CompTok] = bt*cl*e*cal.CTokens + bt*cl*pp*cal.CTokWork + input(cl)
		// The gathered full token tensor carries the same live-copy count as
		// the baseline's (it feeds the aggregation forward and backward),
		// plus the local send buffer — this is what erases the tokenization
		// savings (paper Fig. 8).
		out[CompAgg] = bt*c*e*cal.CTokens + bt*cl*e + bt*c*e*cal.CQKV/t + bt*c*c*cal.CScore*hLocal
	case MethodDCHAG:
		clInt := localChannels(wl.Channels, strat.tp())
		cl := float64(clInt)
		out[CompTok] = bt*cl*e*cal.CTokens + bt*cl*pp*cal.CTokWork + input(cl)
		plan := core.BuildTreePlan(clInt, strat.Tree)
		// Partial module: attention variants keep q/k/v over the local shard
		// at full embed width plus per-group score maps; linear variants
		// keep only group outputs.
		agg := 0.0
		if strat.Kind == core.KindCross {
			agg += bt * cl * e * cal.CQKV
			scorePairs := 0.0
			for _, level := range plan {
				for _, g := range level {
					scorePairs += float64(g * g)
				}
			}
			agg += bt * scorePairs * cal.CScore * float64(shape.Heads)
		} else {
			agg += bt * e * float64(plan.NumLayers()) // group output tokens
		}
		// AllGather buffer (one token per rank) and the final shared layer.
		agg += bt * t * e
		agg += bt*t*e*cal.CQKV/t + bt*t*t*cal.CScore*hLocal
		out[CompAgg] = agg
	}
	out[CompViT] = cal.VitActBytesPerToken * b * tt * e * float64(shape.Layers) *
		(cal.VitReplFrac + (1-cal.VitReplFrac)/t)
	out[CompHead] = bt * c * pp
	return out
}

// fwdFLOPs computes per-component forward FLOPs per GPU per step.
//
// The aggregation attention uses learned-query scoring (linear in channel
// count) for FLOPs, while its *memory* keeps the quadratic stored-map term —
// see DESIGN.md ("perf-model calibration") for why this split matches the
// paper's Fig. 6 narrative.
func fwdFLOPs(shape ModelShape, wl Workload, strat Strategy, cal Calibration) [numComponents]float64 {
	var out [numComponents]float64
	e := float64(shape.Embed)
	b := float64(wl.MicroBatch)
	tt := float64(wl.Tokens())
	c := float64(wl.Channels)
	t := float64(strat.tp())
	pp := float64(wl.Patch * wl.Patch)
	bt := 2 * b * tt // multiply-add pairs

	proj := cal.AggProjFactor
	switch strat.Method {
	case MethodBaseline:
		out[CompTok] = bt * c * pp * e // every rank tokenizes every channel
		out[CompAgg] = bt*c*e*e*proj/t + bt*c*e*2/t
	case MethodDistTok:
		cl := float64(localChannels(wl.Channels, strat.tp()))
		out[CompTok] = bt * cl * pp * e
		out[CompAgg] = bt*c*e*e*proj/t + bt*c*e*2/t
	case MethodDCHAG:
		clInt := localChannels(wl.Channels, strat.tp())
		cl := float64(clInt)
		out[CompTok] = bt * cl * pp * e
		if strat.Kind == core.KindCross {
			out[CompAgg] = bt*cl*e*e*proj + bt*cl*e*2
		} else {
			out[CompAgg] = bt * cl * e // linear channel mixing
		}
		out[CompAgg] += bt*t*e*e*proj/t + bt*t*e*2/t // final shared layer
	}
	out[CompViT] = (bt*12*e*e + 2*bt*tt*e*2) * float64(shape.Layers) / t
	out[CompHead] = bt * e * c * pp / t
	return out
}

// MaxMicroBatch returns the largest micro-batch that fits memory for the
// configuration (0 when even batch 1 overflows) — the mechanism behind the
// paper's Fig. 15: memory freed by D-CHAG converts into batch and therefore
// throughput.
func MaxMicroBatch(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, cal Calibration) int {
	lo, hi := 0, 1
	fits := func(b int) bool {
		w := wl
		w.MicroBatch = b
		return Analyze(shape, w, strat, machine, cal).Fits()
	}
	if !fits(1) {
		return 0
	}
	for fits(hi) && hi < 1<<20 {
		lo, hi = hi, hi*2
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MinTPToFit returns the smallest TP degree (among divisors-of-heads powers
// of two up to maxTP) at which the configuration fits, or 0 if none does.
func MinTPToFit(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, cal Calibration, maxTP int) int {
	for t := 1; t <= maxTP; t *= 2 {
		if shape.Heads%t != 0 {
			continue
		}
		s := strat
		s.TP = t
		if Analyze(shape, wl, s, machine, cal).Fits() {
			return t
		}
	}
	return 0
}

// MemGainOverBaseline returns the per-GPU memory reduction of a strategy
// relative to the TP baseline at the same TP degree — the paper's Figs. 9
// and 13 metric ("performance gains per GPU").
func MemGainOverBaseline(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, cal Calibration) float64 {
	base := strat
	base.Method = MethodBaseline
	mb := Analyze(shape, wl, base, machine, cal).TotalMemBytes()
	ms := Analyze(shape, wl, strat, machine, cal).TotalMemBytes()
	return (mb - ms) / mb
}

// ThroughputGainOverBaseline returns the step-time speedup of a strategy
// over the TP baseline at the same configuration.
func ThroughputGainOverBaseline(shape ModelShape, wl Workload, strat Strategy, machine hw.Machine, cal Calibration) float64 {
	base := strat
	base.Method = MethodBaseline
	tb := Analyze(shape, wl, base, machine, cal).StepSeconds()
	ts := Analyze(shape, wl, strat, machine, cal).StepSeconds()
	return tb/ts - 1
}
