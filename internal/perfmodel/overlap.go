package perfmodel

import (
	"repro/internal/dist"
	"repro/internal/hw"
)

// The overlap composition model: each mesh axis's collectives follow the
// overlap discipline the standard training stacks implement for that axis,
// so only part of the per-axis communication time lands on the critical
// path. The paper's hybrid-parallel throughput figures (Figs. 15/16) assume
// this machinery — FSDP parameter prefetch and DP gradient-bucket overlap
// are on by default in the frameworks it benchmarks — which is why the
// serial compute+comm composition is systematically pessimistic.
//
// Disciplines, per axis:
//
//   - TP: every collective is a data dependency inside a layer (the
//     AllReduce output feeds the next operator immediately), so TP time is
//     on the critical path. Window 0 — nothing hides.
//   - FSDP: parameter AllGathers are prefetched against the previous
//     layer's compute, forward and backward, and the gradient
//     ReduceScatter overlaps the backward walk; the whole step's compute
//     is the window.
//   - DP: the gradient AllReduce is bucketed and launched as buckets
//     fill during backward, so only the backward compute is the window.
//
// Hidden time is drawn from one shared hw.OverlapBudget of the step's
// compute seconds (two streams cannot hide behind the same GEMM), FSDP
// first — its prefetch is scheduled per layer and has first claim on the
// window — then DP, then TP (which hides nothing). The budget is what
// guarantees step >= max(compute, total comm) for any factors.

// bwdComputeFrac is the backward share of a step's compute: the model
// prices fwd+bwd as 3x the forward FLOPs, so backward is 2/3.
const bwdComputeFrac = 2.0 / 3.0

// Overlap holds the calibrated per-axis overlap factors: the fraction of an
// axis's communication time its discipline actually hides when the window
// allows. The zero value disables overlap entirely and reproduces the
// serial compute + total-comm composition bit-for-bit.
type Overlap struct {
	// FSDP is the prefetch efficiency of the FSDP axis's parameter
	// AllGathers and gradient ReduceScatter.
	FSDP float64
	// DP is the bucket-overlap efficiency of the DP gradient AllReduce.
	DP float64
}

// DefaultOverlap returns the calibrated overlap factors.
//
// DP bucket overlap is the more effective machinery (0.9): buckets reduce
// while backward keeps walking earlier layers, and only the last bucket's
// reduction is exposed after the final gradient materializes. FSDP
// prefetch is markedly less efficient (0.45): each layer's AllGather is a
// blocking dependency the prefetch must win layer by layer, the first
// layer's gather and the final ReduceScatter tail are always exposed, and
// the gathers re-issue both forward and backward.
//
// The values are fitted (calibration_test.go) so that with overlap on the
// sweep still reproduces the paper's Fig. 15 shape — the best shape at
// every scale keeps the D-CHAG/TP group node-local with a real FSDP/DP
// hybrid, the TP=8→16 cliff persists — while the hybrid-vs-pure-FSDP
// throughput gain comes down from the serial composition's exaggerated
// +209% toward the "more than 2x" improvement the paper reports
// (Figs. 15/16): overlap forgives pure-FSDP much of its gradient traffic
// but cannot forgive TP time, which sits on the critical path.
func DefaultOverlap() Overlap {
	return Overlap{FSDP: 0.45, DP: 0.9}
}

// overlapOrder is the budget-draw order: per-layer FSDP prefetch has first
// claim on the compute window, DP buckets take what backward leaves, TP
// draws nothing.
var overlapOrder = [dist.NumAxes]dist.Axis{dist.AxisFSDP, dist.AxisDP, dist.AxisTP}

// axisWindow returns the axis discipline's exposed-comm parameters: the
// compute window its collectives may hide behind and the calibrated
// overlap factor.
func (o Overlap) axisWindow(a dist.Axis, computeSeconds float64) (window, factor float64) {
	switch a {
	case dist.AxisTP:
		return 0, 0 // critical path
	case dist.AxisFSDP:
		return computeSeconds, o.FSDP
	case dist.AxisDP:
		return bwdComputeFrac * computeSeconds, o.DP
	}
	return 0, 0
}

// Expose applies the per-axis overlap disciplines to per-axis communication
// times — analytic (Report.AxisCommSeconds) or measured
// (dist.Mesh.AxisWireSeconds) — and returns the exposed time per axis: what
// remains on the critical path after hiding. Exposed times satisfy, for any
// factors:
//
//	comm[a] >= exposed[a] >= 0
//	compute + sum(exposed) >= max(compute, sum(comm))
//
// and the zero Overlap returns comm unchanged.
func (o Overlap) Expose(computeSeconds float64, comm [dist.NumAxes]float64) [dist.NumAxes]float64 {
	budget := hw.NewOverlapBudget(computeSeconds)
	var exposed [dist.NumAxes]float64
	for _, a := range overlapOrder {
		window, factor := o.axisWindow(a, computeSeconds)
		exposed[a] = budget.Hide(comm[a], window, factor)
	}
	return exposed
}
