package perfmodel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// These tests pin the calibration to the feasibility boundaries the paper
// publishes. Each case cites the paper section it encodes. If a constant in
// DefaultCalibration changes, these are the invariants that must keep
// holding.

func analyzeAt(name string, channels, tp, fsdp int, method Method) Report {
	wl := ReferenceWorkload(channels)
	strat := Strategy{Method: method, TP: tp, FSDP: fsdp, Kind: core.KindLinear}
	return AnalyzeDefault(Shapes[name], wl, strat)
}

func assertFits(t *testing.T, r Report, want bool, msg string) {
	t.Helper()
	if r.Fits() != want {
		t.Fatalf("%s: fits=%v (%.1f GiB of %.1f), want %v",
			msg, r.Fits(), r.TotalMemBytes()/(1<<30),
			float64(r.Machine.UsableMemBytes())/(1<<30), want)
	}
}

func TestSingleGPUBoundaries(t *testing.T) {
	// Paper Sec. 4.2 / Fig. 6: "The 100M-parameter model can handle up to
	// 512 channels, while the 1B and 3B models can handle 256 and 128
	// channels, respectively."
	assertFits(t, analyzeAt("100M", 512, 1, 1, MethodBaseline), true, "100M@512 single GPU")
	assertFits(t, analyzeAt("100M", 1024, 1, 1, MethodBaseline), false, "100M@1024 single GPU")
	assertFits(t, analyzeAt("1B", 256, 1, 1, MethodBaseline), true, "1B@256 single GPU")
	assertFits(t, analyzeAt("1B", 512, 1, 1, MethodBaseline), false, "1B@512 single GPU")
	assertFits(t, analyzeAt("3B", 128, 1, 1, MethodBaseline), true, "3B@128 single GPU")
	assertFits(t, analyzeAt("3B", 256, 1, 1, MethodBaseline), false, "3B@256 single GPU")
}

func TestFSDPBoundaries(t *testing.T) {
	// Paper Sec. 4.3: "we can use FSDP to train a 1.7B parameter model with
	// up to 256 channels on two GPUs, or a 7B parameter model with 128
	// channels on a single node".
	assertFits(t, analyzeAt("1.7B", 256, 1, 2, MethodBaseline), true, "1.7B@256 FSDP=2")
	assertFits(t, analyzeAt("1.7B", 512, 1, 2, MethodBaseline), false, "1.7B@512 FSDP=2 (needs TP)")
	assertFits(t, analyzeAt("7B", 128, 1, 8, MethodBaseline), true, "7B@128 FSDP=8 (one node)")
	// Paper Sec. 6.1: "we can run a 7B parameter model with 128 channels on
	// a single Frontier node using FSDP alone, but we can't fit 256
	// channels".
	assertFits(t, analyzeAt("7B", 256, 1, 8, MethodBaseline), false, "7B@256 FSDP=8")
	// "On a single Frontier node, we can only fit a 15B parameter model with
	// up to 64 channels".
	assertFits(t, analyzeAt("15B", 64, 1, 8, MethodBaseline), true, "15B@64 FSDP=8")
	assertFits(t, analyzeAt("15B", 128, 1, 8, MethodBaseline), false, "15B@128 FSDP=8")
	// "we can't fit a 26B parameter model on a single node at all".
	assertFits(t, analyzeAt("26B", 8, 1, 8, MethodBaseline), false, "26B@8 FSDP=8")
}

func TestTPBoundaries(t *testing.T) {
	// Paper Sec. 4.3 / Fig. 7: "for the 1.7B parameter model, two GPUs are
	// required to fit images with 512 input channels, while a full Frontier
	// node is needed to fit images with 1024 channels using TP."
	assertFits(t, analyzeAt("1.7B", 512, 2, 1, MethodBaseline), true, "1.7B@512 TP=2")
	assertFits(t, analyzeAt("1.7B", 1024, 8, 1, MethodBaseline), true, "1.7B@1024 TP=8")
	assertFits(t, analyzeAt("1.7B", 1024, 4, 1, MethodBaseline), false, "1.7B@1024 TP=4")
	// "for the 7B parameter model, images with 256 channels can fit on half
	// of a Frontier node, while two Frontier nodes are required to fit
	// images with 512 channels."
	assertFits(t, analyzeAt("7B", 256, 4, 1, MethodBaseline), true, "7B@256 TP=4")
	assertFits(t, analyzeAt("7B", 512, 16, 1, MethodBaseline), true, "7B@512 TP=16")
	// The paper needs two full nodes (TP=16) here; our calibration agrees
	// that half a node is insufficient (see EXPERIMENTS.md for the exact
	// boundary's divergence at TP=8).
	assertFits(t, analyzeAt("7B", 512, 4, 1, MethodBaseline), false, "7B@512 TP=4")
}

func TestLargeModelTPOnlyInfeasible(t *testing.T) {
	// Paper Sec. 6.1 / Fig. 14: the 26B model cannot fit 256-channel images
	// under TP alone. Our calibration reproduces this within a full node of
	// TP (the paper's practical regime); at 2+ nodes of TP the model
	// predicts a marginal fit — a documented divergence (EXPERIMENTS.md).
	shape := Shapes["26B"]
	wl := ReferenceWorkload(256)
	machine := hw.Frontier()
	for tp := 1; tp <= machine.GPUsPerNode; tp *= 2 {
		r := AnalyzeDefault(shape, wl, Strategy{Method: MethodBaseline, TP: tp})
		if r.Fits() {
			t.Fatalf("26B@256 unexpectedly fits under TP=%d (%.1f GiB)", tp, r.TotalMemBytes()/(1<<30))
		}
	}
}

func TestDCHAGFits26BAt512(t *testing.T) {
	// Paper Sec. 6.1 / Fig. 14: "when using the D-CHAG method, we can fit a
	// 26B parameter model with 512 channels, utilizing less than 80% of the
	// available memory."
	shape := Shapes["26B"]
	wl := ReferenceWorkload(512)
	r := AnalyzeDefault(shape, wl, Strategy{Method: MethodDCHAG, TP: 32, Tree: 0, Kind: core.KindLinear})
	if !r.Fits() {
		t.Fatalf("26B@512 D-CHAG TP=32 should fit, got %.1f GiB", r.TotalMemBytes()/(1<<30))
	}
	if frac := r.TotalMemBytes() / float64(r.Machine.GPUMemBytes); frac >= 0.8 {
		t.Fatalf("26B@512 D-CHAG memory fraction %.2f, want < 0.8", frac)
	}
}

func TestDistTokAloneDoesNotPayOff(t *testing.T) {
	// Paper Sec. 4.4 / Fig. 8: distributing tokenization alone reduces the
	// tokenization component but the channel+spatial AllGather makes the
	// aggregation component *larger* than the TP baseline's.
	shape := Shapes["1.7B"]
	wl := ReferenceWorkload(512)
	base := AnalyzeDefault(shape, wl, Strategy{Method: MethodBaseline, TP: 2})
	dist := AnalyzeDefault(shape, wl, Strategy{Method: MethodDistTok, TP: 2})
	if !(dist.ActBytes[CompTok] < base.ActBytes[CompTok]) {
		t.Fatal("distributed tokenization must shrink the tokenization component")
	}
	if !(dist.ComponentMemBytes(CompAgg) > base.ComponentMemBytes(CompAgg)) {
		t.Fatal("the AllGather must inflate the aggregation component (Fig. 8's yellow bars)")
	}
}

func TestDCHAGMemoryGainsShrinkWithModelSize(t *testing.T) {
	// Paper Sec. 6.1: "as the model parameters of the transformer blocks
	// grow larger, the memory gains become smaller."
	machine := hw.Frontier()
	cal := DefaultCalibration()
	gain := func(name string, ch, tp int) float64 {
		wl := ReferenceWorkload(ch)
		return MemGainOverBaseline(Shapes[name], wl, Strategy{
			Method: MethodDCHAG, TP: tp, Tree: 0, Kind: core.KindLinear,
		}, machine, cal)
	}
	g7 := gain("7B", 256, 8)
	g15 := gain("15B", 256, 8)
	g26 := gain("26B", 256, 8)
	if !(g7 > g15 && g15 > g26) {
		t.Fatalf("gains must shrink with model size: 7B=%.2f 15B=%.2f 26B=%.2f", g7, g15, g26)
	}
	// "for a fixed model size, we observe better performance gains as the
	// number of channels increases."
	gLow := gain("7B", 128, 8)
	gHigh := gain("7B", 512, 8)
	if !(gHigh > gLow) {
		t.Fatalf("gains must grow with channels: 128ch=%.2f 512ch=%.2f", gLow, gHigh)
	}
}

func TestLinearBeatsCrossPartials(t *testing.T) {
	// Paper Sec. 6.1: "using more linear layers instead of cross-attention
	// layers results in better performance."
	machine := hw.Frontier()
	cal := DefaultCalibration()
	wl := ReferenceWorkload(256)
	mk := func(kind core.LayerKind) float64 {
		return MemGainOverBaseline(Shapes["7B"], wl, Strategy{
			Method: MethodDCHAG, TP: 8, Tree: 0, Kind: kind,
		}, machine, cal)
	}
	if !(mk(core.KindLinear) > mk(core.KindCross)) {
		t.Fatalf("D-CHAG-L gain %.3f must exceed D-CHAG-C gain %.3f", mk(core.KindLinear), mk(core.KindCross))
	}
}

func TestAggregationDominatesMemoryAtHighChannels(t *testing.T) {
	// Paper Sec. 4.3: "tokenization and channel aggregation account from 50%
	// to 90% of the memory usage when the number of channels is large."
	for _, tc := range []struct {
		name string
		ch   int
		tp   int
	}{{"1.7B", 512, 2}, {"1.7B", 1024, 8}, {"7B", 512, 16}} {
		r := analyzeAt(tc.name, tc.ch, tc.tp, 1, MethodBaseline)
		frac := (r.ComponentMemBytes(CompTok) + r.ComponentMemBytes(CompAgg)) / r.TotalMemBytes()
		if frac < 0.5 || frac > 0.95 {
			t.Fatalf("%s@%d TP=%d: tok+agg fraction %.2f outside the paper's 50-90%% band", tc.name, tc.ch, tc.tp, frac)
		}
	}
}

func TestComputeShiftsToChannelStageWithChannels(t *testing.T) {
	// Paper Sec. 4.2 / Fig. 6 (bottom): as channels grow, the majority of
	// FLOPs moves to tokenization + aggregation.
	shape := Shapes["1B"]
	fracAt := func(ch int) float64 {
		r := AnalyzeDefault(shape, ReferenceWorkload(ch), Strategy{Method: MethodBaseline})
		total := 0.0
		for _, f := range r.FwdFLOPs {
			total += f
		}
		return (r.FwdFLOPs[CompTok] + r.FwdFLOPs[CompAgg]) / total
	}
	if !(fracAt(512) > fracAt(64)) {
		t.Fatalf("channel-stage FLOPs share must grow with channels: %f vs %f", fracAt(64), fracAt(512))
	}
	if fracAt(512) < 0.5 {
		t.Fatalf("at 512 channels the channel stage should dominate compute, got %.2f", fracAt(512))
	}
}

func TestDCHAGBeatsBaselineThroughputAtHighChannels(t *testing.T) {
	// The headline Fig. 16 direction: D-CHAG-L improves modeled throughput
	// over the TP baseline at high channel counts.
	machine := hw.Frontier()
	cal := DefaultCalibration()
	wl := ReferenceWorkload(512)
	gain := ThroughputGainOverBaseline(Shapes["7B"], wl, Strategy{
		Method: MethodDCHAG, TP: 16, Tree: 0, Kind: core.KindLinear,
	}, machine, cal)
	if gain <= 0 {
		t.Fatalf("D-CHAG-L throughput gain %.2f should be positive at 512 channels", gain)
	}
}

func TestMaxMicroBatchMonotoneInMemory(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	wl := ReferenceWorkload(500)
	wl.MicroBatch = 1
	base := MaxMicroBatch(Shapes["7B"], wl, Strategy{Method: MethodBaseline, TP: 16}, machine, cal)
	dchag := MaxMicroBatch(Shapes["7B"], wl, Strategy{Method: MethodDCHAG, TP: 16, Tree: 0, Kind: core.KindLinear}, machine, cal)
	if !(dchag > base) {
		t.Fatalf("D-CHAG max micro-batch %d must exceed baseline %d (Fig. 15 mechanism)", dchag, base)
	}
	if base < 1 {
		t.Fatalf("baseline 7B@500 TP=16 should fit at least batch 1, got %d", base)
	}
}

func TestMinTPToFitMatchesBoundaries(t *testing.T) {
	machine := hw.Frontier()
	cal := DefaultCalibration()
	if tp := MinTPToFit(Shapes["1.7B"], ReferenceWorkload(512), Strategy{Method: MethodBaseline}, machine, cal, 32); tp != 2 {
		t.Fatalf("1.7B@512 min TP = %d, want 2", tp)
	}
	if tp := MinTPToFit(Shapes["7B"], ReferenceWorkload(512), Strategy{Method: MethodBaseline}, machine, cal, 32); tp != 8 && tp != 16 {
		t.Fatalf("7B@512 min TP = %d, want 8 or 16 (paper: 16)", tp)
	}
	if tp := MinTPToFit(Shapes["26B"], ReferenceWorkload(256), Strategy{Method: MethodBaseline}, machine, cal, 8); tp != 0 {
		t.Fatalf("26B@256 min TP within a node = %d, want infeasible (0)", tp)
	}
}

// The overlap-factor calibration pins (ISSUE 4): the fitted Overlap values
// must keep the paper's qualitative story intact while pulling absolute
// hybrid gains toward the reported improvements.

func TestOverlapCalibrationOrdering(t *testing.T) {
	// DP bucket overlap is the more effective machinery than FSDP's
	// blocking per-layer prefetch, and both are real (nonzero) but
	// imperfect (< 1). TP has no factor at all: it is on the critical path
	// by discipline, not by calibration.
	ov := DefaultOverlap()
	if !(0 < ov.FSDP && ov.FSDP < ov.DP && ov.DP < 1) {
		t.Fatalf("want 0 < FSDP (%v) < DP (%v) < 1", ov.FSDP, ov.DP)
	}
}

// sweep512Gain prices the 512-GCD Fig. 15 comparison under a calibration:
// the winning node-local hybrid versus the pure-FSDP baseline, each at its
// largest fitting micro-batch.
func sweep512Gain(t *testing.T, cal Calibration) float64 {
	t.Helper()
	machine := hw.Frontier()
	shape := Shapes["7B"]
	price := func(strat Strategy) float64 {
		wl := ReferenceWorkload(500)
		b := MaxMicroBatch(shape, wl, strat, machine, cal)
		if b == 0 {
			t.Fatalf("%+v OOMs", strat)
		}
		wl.MicroBatch = b
		return Analyze(shape, wl, strat, machine, cal).TFLOPsPerSecPerNode()
	}
	hybrid := price(Strategy{Method: MethodDCHAG, TP: 2, FSDP: 4, DP: 64, Kind: core.KindLinear})
	pure := price(Strategy{Method: MethodBaseline, TP: 1, FSDP: 512, DP: 1})
	return hybrid/pure - 1
}

func TestOverlapCalibrationTracksPaperGains(t *testing.T) {
	// Under the serial composition the hybrid-vs-pure-FSDP gain is
	// exaggerated (pure-FSDP is charged every parameter collective at full
	// price); with the calibrated overlap on, pure-FSDP recovers most of
	// its gradient traffic while the hybrid's TP time stays exposed, so
	// the gain comes down toward the "more than 2x" improvement the paper
	// reports (Figs. 15/16) — and no further.
	gOver := sweep512Gain(t, DefaultCalibration())
	gSerial := sweep512Gain(t, SerialCalibration())
	if !(gOver < gSerial) {
		t.Fatalf("overlap must shrink the gain: %+.1f%% vs serial %+.1f%%", 100*gOver, 100*gSerial)
	}
	if gOver < 1.0 || gOver > 2.2 {
		t.Fatalf("overlapped hybrid-vs-pure-FSDP gain %+.1f%% outside the paper-tracking band (+100%%..+220%%)", 100*gOver)
	}
}

func TestOverlapKeepsNodeLocalHybridWinning(t *testing.T) {
	// Overlap must not flip the paper's headline: a node-local TP hybrid
	// still beats both the TP-free D-CHAG shape (whose FSDP/DP traffic
	// overlap forgives most aggressively) and pure FSDP at 512 GCDs.
	machine := hw.Frontier()
	cal := DefaultCalibration()
	shape := Shapes["7B"]
	price := func(strat Strategy) float64 {
		wl := ReferenceWorkload(500)
		b := MaxMicroBatch(shape, wl, strat, machine, cal)
		if b == 0 {
			return 0
		}
		wl.MicroBatch = b
		return Analyze(shape, wl, strat, machine, cal).TFLOPsPerSecPerNode()
	}
	hybrid := price(Strategy{Method: MethodDCHAG, TP: 2, FSDP: 4, DP: 64, Kind: core.KindLinear})
	noTP := price(Strategy{Method: MethodDCHAG, TP: 1, FSDP: 8, DP: 64, Kind: core.KindLinear})
	pure := price(Strategy{Method: MethodBaseline, TP: 1, FSDP: 512, DP: 1})
	if !(hybrid > noTP) {
		t.Fatalf("node-local TP hybrid (%.1f) must beat the TP-free shape (%.1f) under overlap", hybrid, noTP)
	}
	if !(hybrid > pure) {
		t.Fatalf("node-local TP hybrid (%.1f) must beat pure-FSDP (%.1f) under overlap", hybrid, pure)
	}
}

func TestStrategyLabels(t *testing.T) {
	s := Strategy{Method: MethodDCHAG, TP: 2, FSDP: 4, DP: 8, Tree: 0, Kind: core.KindLinear}
	if s.Label() != "D-CHAG-L-Tree0 TP=2 FSDP=4 DP=8" {
		t.Fatalf("label = %q", s.Label())
	}
	if s.World() != 64 {
		t.Fatalf("world = %d", s.World())
	}
	b := Strategy{Method: MethodBaseline, TP: 4}
	if b.Label() != "TP-baseline TP=4" {
		t.Fatalf("label = %q", b.Label())
	}
}

func TestReportAccounting(t *testing.T) {
	r := analyzeAt("100M", 128, 1, 1, MethodBaseline)
	total := 0.0
	for _, c := range Components {
		total += r.ComponentMemBytes(c)
	}
	if total != r.TotalMemBytes() {
		t.Fatal("component memory must sum to total")
	}
	if r.MemFraction() <= 0 {
		t.Fatal("memory fraction must be positive")
	}
	if r.StepSeconds() <= 0 || r.TFLOPsPerSec() <= 0 {
		t.Fatal("time and throughput must be positive")
	}
}
