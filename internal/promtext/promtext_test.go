package promtext

import (
	"math"
	"strings"
	"testing"
)

func TestParseWellFormed(t *testing.T) {
	page := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027
http_requests_total{method="get",code="404"} 3
# TYPE queue_depth gauge
queue_depth 7
# TYPE rtt_ms gauge
rtt_ms{quantile="0.99"} 1.5e-1
`
	fams, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	f := fams["http_requests_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("bad counter family: %+v", f)
	}
	if f.Help != "Requests served." {
		t.Fatalf("help = %q", f.Help)
	}
	if v, ok := fams.Value("http_requests_total", map[string]string{"method": "get", "code": "200"}); !ok || v != 1027 {
		t.Fatalf("labeled lookup = %v (ok=%v)", v, ok)
	}
	if v, ok := fams.Value("queue_depth", nil); !ok || v != 7 {
		t.Fatalf("unlabeled lookup = %v (ok=%v)", v, ok)
	}
	if v, ok := fams.Value("rtt_ms", map[string]string{"quantile": "0.99"}); !ok || v != 0.15 {
		t.Fatalf("scientific value = %v (ok=%v)", v, ok)
	}
}

func TestParseEscapesAndSpecials(t *testing.T) {
	page := "# TYPE weird gauge\n" +
		`weird{path="a\\b",msg="say \"hi\"",nl="x\ny"} +Inf` + "\n" +
		"weird{path=\"other\"} NaN\n"
	fams, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	s := fams["weird"].Samples[0]
	if s.Labels["path"] != `a\b` || s.Labels["msg"] != `say "hi"` || s.Labels["nl"] != "x\ny" {
		t.Fatalf("unescaping wrong: %+v", s.Labels)
	}
	if !math.IsInf(s.Value, 1) {
		t.Fatalf("value = %v, want +Inf", s.Value)
	}
	if !math.IsNaN(fams["weird"].Samples[1].Value) {
		t.Fatal("NaN value not parsed")
	}
}

func TestParseSummaryChildren(t *testing.T) {
	page := `# TYPE lat summary
lat{quantile="0.5"} 1
lat_sum 10
lat_count 4
`
	fams, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams["lat"].Samples) != 3 {
		t.Fatalf("summary children not grouped: %+v", fams["lat"])
	}
	if v, ok := fams.Value("lat_count", nil); !ok || v != 4 {
		t.Fatalf("lat_count = %v (ok=%v)", v, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":   "orphan 1\n",
		"bad metric name":      "# TYPE 9bad gauge\n9bad 1\n",
		"bad type":             "# TYPE x foo\nx 1\n",
		"bad label name":       "# TYPE x gauge\nx{9l=\"v\"} 1\n",
		"unquoted label value": "# TYPE x gauge\nx{l=v} 1\n",
		"unterminated labels":  "# TYPE x gauge\nx{l=\"v\" 1\n",
		"bad value":            "# TYPE x gauge\nx{l=\"v\"} one\n",
		"missing value":        "# TYPE x gauge\nx\n",
		"duplicate series":     "# TYPE x gauge\nx{l=\"v\"} 1\nx{l=\"v\"} 2\n",
		"duplicate label":      "# TYPE x gauge\nx{l=\"v\",l=\"w\"} 1\n",
		"conflicting TYPE":     "# TYPE x gauge\n# TYPE x counter\nx 1\n",
		"TYPE after samples":   "# TYPE x gauge\nx 1\n# TYPE x gauge\n",
		"bad escape":           "# TYPE x gauge\nx{l=\"\\t\"} 1\n",
	}
	for name, page := range cases {
		if _, err := Parse(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, page)
		}
	}
}

func TestParseIgnoresBareCommentsAndBlank(t *testing.T) {
	page := "\n# just a comment\n\n# TYPE ok gauge\nok 1\n"
	fams, err := Parse(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fams.Value("ok", nil); !ok {
		t.Fatal("sample lost among comments")
	}
}
