// Package promtext parses the Prometheus text exposition format
// (version 0.0.4) — the format the serve tier's /metrics endpoints
// emit. The repository hand-rolls both sides (no client_golang in the
// image), so this parser is the round-trip check: tests and the trace
// smoke scrape /metrics and fail on anything a real Prometheus server
// would reject — undeclared types, malformed names or label syntax,
// duplicate series, unparseable values.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series sample: a metric name, its label set, and the
// scraped value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: the samples sharing a name, plus the
// HELP and TYPE declarations that preceded them.
type Family struct {
	Name    string
	Type    string // counter, gauge, summary, histogram, or untyped
	Help    string
	Samples []Sample
}

// Families is a parsed scrape, keyed by family name.
type Families map[string]*Family

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// validTypes are the TYPE values the exposition format admits.
var validTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

// Parse reads one text-format exposition. It is strict where Prometheus
// is strict: every sample's family must have a TYPE declared before its
// first sample, names and labels must match the format's grammar, and
// no two samples may share a name and label set.
func Parse(r io.Reader) (Families, error) {
	fams := Families{}
	seen := map[string]bool{} // name + sorted labels -> dup detection
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(fams, line); err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		fam := familyOf(fams, s.Name)
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("promtext: line %d: sample %q before its # TYPE declaration", lineNo, s.Name)
		}
		key := seriesKey(s)
		if seen[key] {
			return nil, fmt.Errorf("promtext: line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	return fams, nil
}

// parseComment handles # HELP and # TYPE lines; other comments are
// ignored, as the format requires.
func parseComment(fams Families, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in HELP", name)
		}
		f := ensureFamily(fams, name)
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q in TYPE", name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("invalid type %q for %s", typ, name)
		}
		f := ensureFamily(fams, name)
		if f.Type != "" && f.Type != typ {
			return fmt.Errorf("conflicting TYPE for %s: %s then %s", name, f.Type, typ)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.Type = typ
	}
	return nil
}

// parseSample parses `name{label="value",...} value [timestamp]`.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Metric name runs up to '{', space, or tab.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := findLabelsEnd(rest)
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field as the value.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("invalid value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// findLabelsEnd locates the '}' closing a label set, honoring quoted,
// escaped label values.
func findLabelsEnd(rest string) int {
	inQuote, escaped := false, false
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return i
		}
	}
	return -1
}

// parseLabels parses `a="x",b="y"` into dst, unescaping \\, \", \n.
func parseLabels(body string, dst map[string]string) error {
	body = strings.TrimSpace(body)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		body = strings.TrimSpace(body[eq+1:])
		if body == "" || body[0] != '"' {
			return fmt.Errorf("label %s value must be quoted", name)
		}
		var sb strings.Builder
		i := 1
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					sb.WriteByte('\n')
				case '\\', '"':
					sb.WriteByte(body[i])
				default:
					return fmt.Errorf("invalid escape \\%c in label %s", body[i], name)
				}
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if i >= len(body) {
			return fmt.Errorf("unterminated value for label %s", name)
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		dst[name] = sb.String()
		body = strings.TrimSpace(body[i+1:])
		if body == "" {
			break
		}
		if body[0] != ',' {
			return fmt.Errorf("expected ',' between labels, got %q", body)
		}
		body = strings.TrimSpace(body[1:])
	}
	return nil
}

// familyOf resolves the family a sample belongs to: its own name, or —
// for summary/histogram child series — the parent that declared the
// _sum/_count/_bucket suffix family.
func familyOf(fams Families, name string) *Family {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, ok := fams[base]; ok && (f.Type == "summary" || f.Type == "histogram") {
				return f
			}
		}
	}
	return nil
}

func ensureFamily(fams Families, name string) *Family {
	f := fams[name]
	if f == nil {
		f = &Family{Name: name}
		fams[name] = f
	}
	return f
}

// seriesKey canonicalizes a sample's identity for duplicate detection.
func seriesKey(s Sample) string {
	names := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(s.Name)
	sb.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, s.Labels[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Value returns the sample of family name whose labels exactly match
// want (nil matches only an unlabeled sample).
func (fs Families) Value(name string, want map[string]string) (float64, bool) {
	// Child series of summaries/histograms live under the parent family.
	for _, f := range fs {
		for _, s := range f.Samples {
			if s.Name != name || len(s.Labels) != len(want) {
				continue
			}
			match := true
			for k, v := range want {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}
