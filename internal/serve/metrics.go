package serve

import (
	"sort"
	"sync"
	"time"
)

// maxLatencySamples caps the per-engine latency sample buffers; beyond it
// the counters keep counting but no further samples are recorded. 1<<17
// samples (~2 MiB) comfortably covers every benchmark and smoke load this
// repository runs.
const maxLatencySamples = 1 << 17

// Metrics aggregates the engine's per-request latency, throughput, batch
// and queue-depth statistics. All methods are safe for concurrent use; the
// replica leaders and the submission path share one instance.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time // guarded by mu
	completed uint64    // guarded by mu
	rejected  uint64    // guarded by mu
	failed    uint64    // guarded by mu
	batches   uint64    // guarded by mu
	sumBatch  uint64    // guarded by mu
	maxDepth  int       // guarded by mu
	hits      uint64    // guarded by mu
	misses    uint64    // guarded by mu
	coalesced uint64    // guarded by mu
	swaps     uint64    // guarded by mu
	queuedMs  []float64 // guarded by mu
	totalMs   []float64 // guarded by mu
	hitMs     []float64 // guarded by mu
}

// NewMetrics returns a Metrics with the throughput clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// noteDepth records an observed queue depth.
func (m *Metrics) noteDepth(depth int) {
	m.mu.Lock()
	if depth > m.maxDepth {
		m.maxDepth = depth
	}
	m.mu.Unlock()
}

// noteRejected counts an admission-control rejection.
func (m *Metrics) noteRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// noteFailed counts a request failed by engine shutdown.
func (m *Metrics) noteFailed() {
	m.mu.Lock()
	m.failed++
	m.mu.Unlock()
}

// observe records one served request.
func (m *Metrics) observe(r Response) {
	m.mu.Lock()
	m.completed++
	if len(m.totalMs) < maxLatencySamples {
		m.queuedMs = append(m.queuedMs, float64(r.Queued)/float64(time.Millisecond))
		m.totalMs = append(m.totalMs, float64(r.Total)/float64(time.Millisecond))
	}
	m.mu.Unlock()
}

// noteHit records one response answered straight from the cache, with its
// submit-to-answer latency. Hit latencies are sampled separately from
// forward latencies: the whole point of the cache is that the two
// distributions are far apart.
func (m *Metrics) noteHit(d time.Duration) {
	m.mu.Lock()
	m.hits++
	if len(m.hitMs) < maxLatencySamples {
		m.hitMs = append(m.hitMs, float64(d)/float64(time.Millisecond))
	}
	m.mu.Unlock()
}

// noteMiss counts a cache miss that became the owner of its forward.
func (m *Metrics) noteMiss() {
	m.mu.Lock()
	m.misses++
	m.mu.Unlock()
}

// noteCoalesced counts a request that joined an identical in-flight
// forward instead of queuing its own.
func (m *Metrics) noteCoalesced() {
	m.mu.Lock()
	m.coalesced++
	m.mu.Unlock()
}

// noteSwap counts one completed hot checkpoint swap.
func (m *Metrics) noteSwap() {
	m.mu.Lock()
	m.swaps++
	m.mu.Unlock()
}

// noteBatch records one dispatched micro-batch.
func (m *Metrics) noteBatch(size int) {
	m.mu.Lock()
	m.batches++
	m.sumBatch += uint64(size)
	m.mu.Unlock()
}

// Snapshot is a point-in-time view of the engine's metrics.
type Snapshot struct {
	// Completed, Rejected, Failed count requests served, refused at
	// admission, and failed by shutdown.
	Completed, Rejected, Failed uint64
	// Batches is the number of micro-batches dispatched; MeanBatch the mean
	// requests per batch.
	Batches   uint64
	MeanBatch float64
	// MaxQueueDepth is the deepest queue observed at submission.
	MaxQueueDepth int
	// CacheHits, CacheMisses, CacheCoalesced count content-addressable
	// cache outcomes: answered from cache, owned a forward, joined an
	// identical in-flight forward. All zero when the cache is disabled.
	// Completed counts forward-served requests only — cache hits are
	// answered without a forward and counted here instead.
	CacheHits, CacheMisses, CacheCoalesced uint64
	// Swaps counts completed hot checkpoint swaps.
	Swaps uint64
	// ElapsedSeconds is the time since the engine started; ThroughputRPS is
	// Completed over that window.
	ElapsedSeconds float64
	ThroughputRPS  float64
	// Latency quantiles in milliseconds. Queued is time waiting for the
	// micro-batch to form; Total is enqueue-to-response.
	QueuedP50Ms, QueuedP99Ms           float64
	TotalP50Ms, TotalP95Ms, TotalP99Ms float64
	// Cache-hit latency quantiles in milliseconds (submit to answer; no
	// queue, no batch, no forward).
	HitP50Ms, HitP99Ms float64
}

// Snapshot computes the current statistics. Only the counter reads and
// sample copies happen under the lock; the quantile sorts run outside it,
// so a metrics poll never stalls request completions.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Completed:      m.completed,
		Rejected:       m.rejected,
		Failed:         m.failed,
		Batches:        m.batches,
		MaxQueueDepth:  m.maxDepth,
		CacheHits:      m.hits,
		CacheMisses:    m.misses,
		CacheCoalesced: m.coalesced,
		Swaps:          m.swaps,
	}
	if m.batches > 0 {
		s.MeanBatch = float64(m.sumBatch) / float64(m.batches)
	}
	s.ElapsedSeconds = time.Since(m.start).Seconds()
	if s.ElapsedSeconds > 0 {
		s.ThroughputRPS = float64(m.completed) / s.ElapsedSeconds
	}
	queued := append([]float64(nil), m.queuedMs...)
	total := append([]float64(nil), m.totalMs...)
	hit := append([]float64(nil), m.hitMs...)
	m.mu.Unlock()
	sort.Float64s(queued)
	sort.Float64s(total)
	sort.Float64s(hit)
	s.QueuedP50Ms = Quantile(queued, 0.50)
	s.QueuedP99Ms = Quantile(queued, 0.99)
	s.TotalP50Ms = Quantile(total, 0.50)
	s.TotalP95Ms = Quantile(total, 0.95)
	s.TotalP99Ms = Quantile(total, 0.99)
	s.HitP50Ms = Quantile(hit, 0.50)
	s.HitP99Ms = Quantile(hit, 0.99)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample by nearest-rank; 0 for an empty sample. Exported for load
// generators that aggregate their own client-side samples.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
