package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/leakcheck"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

// testArch is the tiny serving-test architecture: 8 channels in 4 logical
// partitions, so checkpoints reshard across q in {1, 2, 4}.
func testArch() model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: 8, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 5,
		},
		Depth: 1, MetaTokens: 1, Partitions: 4,
	}
}

// testInput builds a deterministic [C, h, w] snapshot.
func testInput(a model.Arch, seed int64, h, w int) *tensor.Tensor {
	return tensor.Randn(tensor.NewRNG(seed), a.Channels, h, w)
}

// reference computes what the engine must answer for a fully-assembled
// [C, H, W] input: the serial-equivalent model's no-grad forecast.
func reference(t *testing.T, a model.Arch, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	m := model.NewSerialDCHAGEquivalent(a, a.Partitions)
	img := m.PredictImage(x.Reshape(1, a.Channels, a.ImgH, a.ImgW))
	return img.Reshape(a.Channels, a.ImgH, a.ImgW)
}

func startTest(t *testing.T, cfg Config, src Source) *Engine {
	t.Helper()
	// Registered before the Close cleanup, so it runs after it: a Close
	// that strands a leader or worker goroutine fails the test.
	leakcheck.Check(t)
	e, err := Start(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine did not close cleanly: %v", err)
		}
	})
	return e
}

// TestServeMatchesDirectInference pins the end-to-end answer: a request
// through queue, batcher, and a 2-rank replica equals the serial model's
// direct no-grad forecast, bit for bit.
func TestServeMatchesDirectInference(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 2, Replicas: 1, MaxBatch: 4, MaxWait: 5 * time.Millisecond}, FromArch(a))
	x := testInput(a, 1, a.ImgH, a.ImgW)
	want := reference(t, a, x)

	resp, err := e.Do(context.Background(), &Request{ID: "r0", Input: x})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != "r0" || resp.BatchSize < 1 {
		t.Fatalf("bad response metadata: %+v", resp)
	}
	if d := tensor.MaxAbsDiff(resp.Output, want); d != 0 {
		t.Fatalf("served output differs from direct inference by %g", d)
	}
}

// TestRegridAndPartialChannels pins the batcher's input adaptation: a
// coarse-grid request is bilinearly regridded, and a partial channel set is
// scattered onto a zero canvas — both must match a direct forward on the
// equivalently assembled input.
func TestRegridAndPartialChannels(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 2, Replicas: 1, MaxBatch: 2, MaxWait: time.Millisecond}, FromArch(a))

	t.Run("regrid", func(t *testing.T) {
		coarse := testInput(a, 2, 8, 8) // finer grid than the model's 4x4
		want := reference(t, a, data.RegridBatch(coarse, a.ImgH, a.ImgW))
		resp, err := e.Do(context.Background(), &Request{Input: coarse})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(resp.Output, want); d != 0 {
			t.Fatalf("regridded request differs from direct inference by %g", d)
		}
	})

	t.Run("partial-channels", func(t *testing.T) {
		channels := []int{1, 4, 6}
		part := tensor.Randn(tensor.NewRNG(3), len(channels), a.ImgH, a.ImgW)
		canvas := tensor.New(a.Channels, a.ImgH, a.ImgW)
		hw := a.ImgH * a.ImgW
		for r, ch := range channels {
			copy(canvas.Data[ch*hw:(ch+1)*hw], part.Data[r*hw:(r+1)*hw])
		}
		want := reference(t, a, canvas)
		resp, err := e.Do(context.Background(), &Request{Input: part, Channels: channels})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(resp.Output, want); d != 0 {
			t.Fatalf("partial-channel request differs from direct inference by %g", d)
		}
	})
}

// trainCheckpoint trains the test model distributed over `ranks` goroutine
// ranks and writes a shard-per-rank checkpoint.
func trainCheckpoint(t *testing.T, dir string, ranks int) model.Arch {
	t.Helper()
	a := testArch()
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 8, Channels: a.Channels, ImgH: a.ImgH, ImgW: a.ImgW,
		Endmembers: 2, Noise: 0.01, Seed: 9,
	})
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*2, 2)
		return x, x
	}
	opts := train.Options{
		Steps: 2, Batch: 2, LR: 1e-3, MaskRatio: 0.5, Seed: 11,
		CheckpointDir: dir,
	}
	if _, _, err := train.Distributed(a, ranks, false, opts, batch); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestReshardedCheckpointServing is the acceptance round trip: a checkpoint
// saved at 4 ranks is served at 2 ranks x 2 replicas (a different q), and
// every answer matches the serial restore of the same checkpoint bitwise.
// The architecture comes from the manifest alone.
func TestReshardedCheckpointServing(t *testing.T) {
	dir := t.TempDir()
	a := trainCheckpoint(t, dir, 4)

	src, err := FromCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := src.Arch()
	if got.Channels != a.Channels || got.Embed != a.Embed || got.Depth != a.Depth || got.Partitions != a.Partitions {
		t.Fatalf("manifest arch %+v does not match trained arch %+v", got, a)
	}

	// Serial restore of the same checkpoint is the oracle.
	oracle, err := FromCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	srcSerial := oracle.(ckptSource)
	sm := model.NewSerialDCHAGEquivalent(srcSerial.arch, srcSerial.arch.Partitions)
	if err := srcSerial.ck.RestoreParams(sm.Params()); err != nil {
		t.Fatal(err)
	}

	e := startTest(t, Config{Ranks: 2, Replicas: 2, MaxBatch: 4, MaxWait: 2 * time.Millisecond}, src)
	for i := 0; i < 6; i++ {
		x := testInput(a, int64(20+i), a.ImgH, a.ImgW)
		want := sm.PredictImage(x.Reshape(1, a.Channels, a.ImgH, a.ImgW)).Reshape(a.Channels, a.ImgH, a.ImgW)
		resp, err := e.Do(context.Background(), &Request{ID: fmt.Sprint(i), Input: x})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(resp.Output, want); d != 0 {
			t.Fatalf("request %d: resharded serving differs from serial restore by %g", i, d)
		}
	}
}

// TestServingTopologyMismatch pins the Start-time error: 3 serving ranks do
// not divide 4 logical partitions.
func TestServingTopologyMismatch(t *testing.T) {
	dir := t.TempDir()
	trainCheckpoint(t, dir, 2)
	src, err := FromCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Start(Config{Ranks: 3, Replicas: 1}, src); err == nil {
		t.Fatal("Start must reject a rank count that does not divide the partition count")
	}
}

// TestBatcherAggregates pins the dynamic micro-batcher: a burst submitted
// while the single replica is busy backs up the queue, so later requests
// coalesce into multi-request batches capped at MaxBatch. (A lone request
// never waits: the batcher flushes early whenever the queue is empty and a
// dispatch slot is free, so aggregation appears exactly when there is
// queue pressure.)
func TestBatcherAggregates(t *testing.T) {
	a := testArch()
	const n, maxBatch = 16, 4
	e := startTest(t, Config{Ranks: 1, Replicas: 1, MaxBatch: maxBatch, MaxWait: 200 * time.Millisecond, QueueDepth: 64}, FromArch(a))

	x := testInput(a, 30, a.ImgH, a.ImgW)
	var chans []<-chan Response
	for i := 0; i < n; i++ {
		ch, err := e.Submit(&Request{ID: fmt.Sprint(i), Input: x})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.BatchSize < 1 || r.BatchSize > maxBatch {
			t.Fatalf("request %d served in batch of %d, cap %d", i, r.BatchSize, maxBatch)
		}
		if r.Queued > time.Minute || r.Total < r.Queued {
			t.Fatalf("implausible latencies: %+v", r)
		}
	}
	snap := e.Metrics().Snapshot()
	if snap.Completed != n {
		t.Fatalf("completed %d of %d", snap.Completed, n)
	}
	// The burst outpaces the replica (each forward takes ~100µs, the burst
	// lands in ~µs), so the queue must have forced real aggregation.
	if snap.Batches >= n || snap.MeanBatch <= 1 {
		t.Fatalf("burst of %d served in %d batches (mean %.2f): batcher never aggregated", n, snap.Batches, snap.MeanBatch)
	}
}

// TestAdmissionControl floods a depth-1 queue and verifies the engine
// rejects with ErrQueueFull instead of buffering unboundedly, then drains
// cleanly.
func TestAdmissionControl(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 1, Replicas: 1, MaxBatch: 1, MaxWait: time.Millisecond, QueueDepth: 1}, FromArch(a))
	x := testInput(a, 40, a.ImgH, a.ImgW)

	var pending []<-chan Response
	sawFull := false
	for i := 0; i < 10000 && !sawFull; i++ {
		ch, err := e.Submit(&Request{Input: x})
		switch {
		case err == nil:
			pending = append(pending, ch)
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("a depth-1 queue never rejected under a 10k-request flood")
	}
	for _, ch := range pending {
		if r := <-ch; r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if snap := e.Metrics().Snapshot(); snap.Rejected == 0 {
		t.Fatalf("rejections not counted: %+v", snap)
	}
}

// TestRequestValidation pins the admission-time request checks.
func TestRequestValidation(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 1, Replicas: 1, MaxBatch: 1}, FromArch(a))
	bad := []*Request{
		nil,
		{},
		{Input: tensor.New(a.Channels, a.ImgH)}, // rank 2
		{Input: tensor.New(a.Channels+1, a.ImgH, a.ImgW)},                      // wrong channel count
		{Input: tensor.New(2, a.ImgH, a.ImgW), Channels: []int{0}},             // length mismatch
		{Input: tensor.New(2, a.ImgH, a.ImgW), Channels: []int{3, 1}},          // not increasing
		{Input: tensor.New(2, a.ImgH, a.ImgW), Channels: []int{0, a.Channels}}, // out of range
	}
	for i, req := range bad {
		if _, err := e.Submit(req); err == nil {
			t.Fatalf("bad request %d admitted", i)
		}
	}
}

// TestCloseSemantics pins shutdown: Close is idempotent, later Submits see
// ErrClosed, and Done closes with a nil Err.
func TestCloseSemantics(t *testing.T) {
	leakcheck.Check(t)
	a := testArch()
	e, err := Start(Config{Ranks: 2, Replicas: 2, MaxBatch: 2}, FromArch(a))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("clean close returned %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close returned %v", err)
	}
	select {
	case <-e.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	if _, err := e.Submit(&Request{Input: testInput(a, 50, a.ImgH, a.ImgW)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := e.Do(context.Background(), &Request{Input: testInput(a, 50, a.ImgH, a.ImgW)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close = %v, want ErrClosed", err)
	}
}

// brokenSource advertises one architecture but builds models of another,
// so the first forward panics inside a worker — a deterministic stand-in
// for any mid-serve replica failure.
type brokenSource struct {
	claimed model.Arch
	builds  Source
}

func (s brokenSource) Arch() model.Arch { return s.claimed }
func (s brokenSource) Build(tpc *comm.Communicator) (*model.FoundationModel, error) {
	return s.builds.Build(tpc)
}

// TestWorkerFailureFailsClients pins the failure plumbing: when a replica
// dies mid-batch, every outstanding client gets an error — in-flight batch,
// work buffer, and queue alike — and the engine reports the root cause
// instead of hanging anything.
func TestWorkerFailureFailsClients(t *testing.T) {
	leakcheck.Check(t)
	good := testArch()
	bad := good
	bad.Channels = good.Channels * 2 // engine assembles at twice the model's channels
	bad.Partitions = good.Partitions
	e, err := Start(Config{Ranks: 1, Replicas: 1, MaxBatch: 2, MaxWait: time.Millisecond, QueueDepth: 16},
		brokenSource{claimed: bad, builds: FromArch(good)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// The worker died on the channel mismatch; Close must surface that
		// root cause, not nil.
		if err := e.Close(); err == nil {
			t.Error("Close after worker failure returned nil, want the root cause")
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Do(context.Background(), &Request{Input: testInput(bad, int64(i), bad.ImgH, bad.ImgW)})
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("clients hung after worker failure")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d succeeded against a broken replica", i)
		}
	}
	<-e.Done()
	if e.Err() == nil {
		t.Fatal("engine must report the worker failure")
	}
	if _, err := e.Submit(&Request{Input: testInput(bad, 0, bad.ImgH, bad.ImgW)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after failure = %v, want ErrClosed", err)
	}
}

// TestLoadgen drives the full path under concurrency: every request must
// complete, and the engine's counters must add up.
func TestLoadgen(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 2, Replicas: 2, MaxBatch: 8, MaxWait: 2 * time.Millisecond, QueueDepth: 64}, FromArch(a))
	res := RunLoadgen(e, LoadgenOptions{
		Requests:    200,
		Concurrency: 16,
		NewRequest: func(i int) *Request {
			return &Request{ID: fmt.Sprint(i), Input: testInput(a, int64(i), a.ImgH, a.ImgW)}
		},
	})
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if res.Snapshot.Completed != 200 {
		t.Fatalf("completed %d of 200", res.Snapshot.Completed)
	}
	if res.Snapshot.MeanBatch < 1 || res.Snapshot.Batches == 0 {
		t.Fatalf("implausible batching stats: %+v", res.Snapshot)
	}
	if res.ThroughputRPS() <= 0 {
		t.Fatalf("throughput %v", res.ThroughputRPS())
	}
}
