package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/tensor"
)

// startRouter builds a leak-checked router over a shared host.
func startRouter(t *testing.T, cfg RouterConfig) *Router {
	t.Helper()
	leakcheck.Check(t)
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := r.Close(); err != nil {
			t.Errorf("router did not close cleanly: %v", err)
		}
	})
	return r
}

// TestRouterMultiModelSharedHost pins instance multiplexing: two models
// with different weights served over one mesh, each answering bitwise for
// its own weights — the control broadcast routes every batch to the right
// instance on every rank.
func TestRouterMultiModelSharedHost(t *testing.T) {
	a := testArch()
	b := a
	b.Seed = 7
	r := startRouter(t, RouterConfig{Ranks: 2, Replicas: 1})
	cfg := Config{MaxBatch: 4, MaxWait: time.Millisecond}
	if _, err := r.AddModel("alpha", cfg, FromArch(a)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddModel("beta", cfg, FromArch(b)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddModel("alpha", cfg, FromArch(a)); err == nil {
		t.Fatal("duplicate model name accepted")
	}

	x := testInput(a, 80, a.ImgH, a.ImgW)
	wantA, wantB := reference(t, a, x), reference(t, b, x)
	if tensor.MaxAbsDiff(wantA, wantB) == 0 {
		t.Fatal("test models answer identically; routing proves nothing")
	}
	for i := 0; i < 4; i++ {
		ra, err := r.Do(context.Background(), "tenant", "alpha", &Request{Input: x})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := r.Do(context.Background(), "tenant", "beta", &Request{Input: x})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(ra.Output, wantA); d != 0 {
			t.Fatalf("alpha answer differs from alpha's model by %g", d)
		}
		if d := tensor.MaxAbsDiff(rb.Output, wantB); d != 0 {
			t.Fatalf("beta answer differs from beta's model by %g", d)
		}
	}
	if _, err := r.Do(context.Background(), "tenant", "gamma", &Request{Input: x}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model returned %v, want ErrUnknownModel", err)
	}
}

// TestRouterTenantIsolation pins the per-tenant bound: a tenant at its
// in-flight limit is rejected with ErrTenantBusy while another tenant's
// traffic flows untouched — one tenant's burst cannot starve another.
func TestRouterTenantIsolation(t *testing.T) {
	a := testArch()
	r := startRouter(t, RouterConfig{Ranks: 1, Replicas: 1})
	if _, err := r.AddModel("m", Config{MaxBatch: 4, MaxWait: time.Millisecond}, FromArch(a)); err != nil {
		t.Fatal(err)
	}
	r.SetTenantSlots("burst", 1)
	x := testInput(a, 81, a.ImgH, a.ImgW)

	// Occupy burst's only slot, then its next request must bounce while the
	// steady tenant keeps completing against the same engine.
	bt := r.tenantFor("burst")
	bt.slots <- struct{}{}
	if _, err := r.Do(context.Background(), "burst", "m", &Request{Input: x}); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("saturated tenant got %v, want ErrTenantBusy", err)
	}
	const steady = 8
	for i := 0; i < steady; i++ {
		if _, err := r.Do(context.Background(), "steady", "m", &Request{Input: x}); err != nil {
			t.Fatalf("steady tenant blocked by another tenant's burst: %v", err)
		}
	}
	<-bt.slots
	if _, err := r.Do(context.Background(), "burst", "m", &Request{Input: x}); err != nil {
		t.Fatalf("tenant still rejected after its slot freed: %v", err)
	}

	stats := r.TenantStats()
	if stats["burst"].Rejected != 1 || stats["burst"].Completed != 1 {
		t.Fatalf("burst stats %+v, want 1 rejected / 1 completed", stats["burst"])
	}
	if s := stats["steady"]; s.Rejected != 0 || s.Completed != steady {
		t.Fatalf("steady stats %+v, want 0 rejected / %d completed", s, steady)
	}
}

// TestRouterHTTP smokes the routed HTTP surface: model in the path, tenant
// in the header, per-model stats and tenant counters readable.
func TestRouterHTTP(t *testing.T) {
	a := testArch()
	r := startRouter(t, RouterConfig{Ranks: 1, Replicas: 1})
	cfg := Config{MaxBatch: 2, MaxWait: time.Millisecond, CacheBytes: 1 << 20}
	if _, err := r.AddModel("m", cfg, FromArch(a)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	// The keep-alive loops of the test client's pooled connections would
	// otherwise outlive the test and trip every later leak check.
	defer srv.Client().CloseIdleConnections()

	x := testInput(a, 82, a.ImgH, a.ImgW)
	body, err := json.Marshal(PredictRequest{ID: "h1", Shape: x.Shape, Values: x.Data})
	if err != nil {
		t.Fatal(err)
	}
	post := func() PredictResponse {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/v1/models/m/predict", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}
	first, second := post(), post()
	if first.Cached || !second.Cached {
		t.Fatalf("cache flags wrong across resubmission: first %v, second %v", first.Cached, second.Cached)
	}
	want := reference(t, a, x)
	if d := tensor.MaxAbsDiff(tensor.FromSlice(second.Values, second.Shape...), want); d != 0 {
		t.Fatalf("routed HTTP answer differs from direct inference by %g", d)
	}

	sresp, err := srv.Client().Get(srv.URL + "/v1/models/m/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(sresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Fatalf("routed stats %+v, want 1 hit / 1 miss", snap)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/models/none/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model stats: status %d, want 404", resp.StatusCode)
	}
}
