package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
)

// promWriter emits Prometheus text exposition format (0.0.4). HELP/TYPE
// headers are written once per family, on the family's first sample —
// the format requires TYPE before any sample of its family.
type promWriter struct {
	w     io.Writer
	typed map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, typed: map[string]bool{}}
}

// sample writes one series sample, declaring the family on first use.
// labels are emitted in the given order (callers keep them sorted for a
// byte-deterministic page).
func (p *promWriter) sample(name, typ, help string, labels [][2]string, v float64) {
	if !p.typed[name] {
		fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		p.typed[name] = true
	}
	io.WriteString(p.w, name)
	if len(labels) > 0 {
		io.WriteString(p.w, "{")
		for i, kv := range labels {
			if i > 0 {
				io.WriteString(p.w, ",")
			}
			fmt.Fprintf(p.w, "%s=%q", kv[0], escapeLabel(kv[1]))
		}
		io.WriteString(p.w, "}")
	}
	fmt.Fprintf(p.w, " %s\n", strconv.FormatFloat(v, 'g', -1, 64))
}

// escapeLabel applies the exposition format's label-value escapes. %q
// already handles \\ and \"; newlines must become \n explicitly.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeBuildInfo emits the dchag_build_info gauge: constant 1 with the
// binary's identity as labels, the convention Prometheus ecosystems use
// for joining version metadata onto any series.
func writeBuildInfo(p *promWriter) {
	bi := buildinfo.Get()
	labels := [][2]string{
		{"go_version", bi.GoVersion},
		{"module", bi.Main},
		{"version", bi.Version},
	}
	if bi.Revision != "" {
		labels = append(labels, [2]string{"revision", bi.Revision})
	}
	p.sample("dchag_build_info", "gauge",
		"Build metadata of the serving binary (value is always 1).", labels, 1)
}

// writeSnapshot emits one engine's metrics snapshot, every series
// tagged with base labels (e.g. model="name"; nil for a single-engine
// endpoint).
func writeSnapshot(p *promWriter, s Snapshot, base [][2]string) {
	counter := func(name, help string, v float64) {
		p.sample(name, "counter", help, base, v)
	}
	gauge := func(name, help string, v float64) {
		p.sample(name, "gauge", help, base, v)
	}
	counter("dchag_requests_completed_total", "Requests served by a forward pass.", float64(s.Completed))
	counter("dchag_requests_rejected_total", "Requests refused at admission (queue full).", float64(s.Rejected))
	counter("dchag_requests_failed_total", "Requests failed by engine shutdown.", float64(s.Failed))
	counter("dchag_batches_total", "Micro-batches dispatched to the mesh.", float64(s.Batches))
	gauge("dchag_batch_size_mean", "Mean requests per dispatched micro-batch.", s.MeanBatch)
	gauge("dchag_queue_depth_max", "Deepest request queue observed at submission.", float64(s.MaxQueueDepth))
	counter("dchag_cache_hits_total", "Responses answered from the content-addressable cache.", float64(s.CacheHits))
	counter("dchag_cache_misses_total", "Cache misses that owned their forward.", float64(s.CacheMisses))
	counter("dchag_cache_coalesced_total", "Requests coalesced onto an identical in-flight forward.", float64(s.CacheCoalesced))
	counter("dchag_swaps_total", "Completed hot checkpoint swaps.", float64(s.Swaps))
	gauge("dchag_uptime_seconds", "Seconds since the engine started.", s.ElapsedSeconds)
	gauge("dchag_throughput_rps", "Completed requests per second since start.", s.ThroughputRPS)
	quantile := func(name, help, q string, v float64) {
		labels := append(append([][2]string{}, base...), [2]string{"quantile", q})
		p.sample(name, "gauge", help, labels, v)
	}
	quantile("dchag_queued_latency_ms", "Time waiting for the micro-batch to form, by quantile.", "0.5", s.QueuedP50Ms)
	quantile("dchag_queued_latency_ms", "Time waiting for the micro-batch to form, by quantile.", "0.99", s.QueuedP99Ms)
	quantile("dchag_total_latency_ms", "Enqueue-to-response latency, by quantile.", "0.5", s.TotalP50Ms)
	quantile("dchag_total_latency_ms", "Enqueue-to-response latency, by quantile.", "0.95", s.TotalP95Ms)
	quantile("dchag_total_latency_ms", "Enqueue-to-response latency, by quantile.", "0.99", s.TotalP99Ms)
	quantile("dchag_cache_hit_latency_ms", "Submit-to-answer latency of cache hits, by quantile.", "0.5", s.HitP50Ms)
	quantile("dchag_cache_hit_latency_ms", "Submit-to-answer latency of cache hits, by quantile.", "0.99", s.HitP99Ms)
}

// handleMetrics serves GET /metrics for a single engine.
func (e *Engine) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := newPromWriter(w)
	writeBuildInfo(p)
	writeSnapshot(p, e.metrics.Snapshot(), nil)
}

// handleMetrics serves GET /metrics for a router: every model's engine
// snapshot labeled model="name", plus per-tenant admission counters
// labeled tenant="name". Names are emitted sorted so the page is
// deterministic for a fixed state.
func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := newPromWriter(w)
	writeBuildInfo(p)
	models := r.Models()
	sort.Strings(models)
	for _, name := range models {
		e, ok := r.Engine(name)
		if !ok {
			continue // removed between list and lookup
		}
		writeSnapshot(p, e.metrics.Snapshot(), [][2]string{{"model", name}})
	}
	stats := r.TenantStats()
	tenants := make([]string, 0, len(stats))
	for name := range stats {
		tenants = append(tenants, name)
	}
	sort.Strings(tenants)
	for _, name := range tenants {
		t := stats[name]
		base := [][2]string{{"tenant", name}}
		p.sample("dchag_tenant_admitted_total", "counter",
			"Requests admitted past the tenant's in-flight bound.", base, float64(t.Admitted))
		p.sample("dchag_tenant_rejected_total", "counter",
			"Requests refused at the tenant's in-flight bound.", base, float64(t.Rejected))
		p.sample("dchag_tenant_completed_total", "counter",
			"Admitted requests that completed.", base, float64(t.Completed))
		p.sample("dchag_tenant_failed_total", "counter",
			"Admitted requests that failed.", base, float64(t.Failed))
		p.sample("dchag_tenant_slots", "gauge",
			"The tenant's in-flight bound.", base, float64(t.Slots))
		p.sample("dchag_tenant_inflight", "gauge",
			"The tenant's currently in-flight requests.", base, float64(t.InFlight))
	}
}
