package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/model"
)

// Source builds one serving rank's model replica. Build is called once per
// mesh rank with that rank's TP-group communicator (size Config.Ranks); the
// returned model must be ready for Infer.
type Source interface {
	// Arch returns the architecture every replica realizes; the engine
	// derives its request/response geometry from it.
	Arch() model.Arch
	// Build constructs (and, for checkpoints, restores) the model slice for
	// one rank of a TP group.
	Build(tpc *comm.Communicator) (*model.FoundationModel, error)
}

// archSource serves fresh seeded weights — the hermetic benchmark source.
type archSource struct {
	arch model.Arch
}

// FromArch returns a Source building models with fresh seeded weights from
// the architecture alone (no checkpoint). Used by benchmarks and tests;
// outputs are deterministic in Arch.Seed like every model in this
// repository.
func FromArch(a model.Arch) Source { return archSource{arch: a} }

func (s archSource) Arch() model.Arch { return s.arch }

func (s archSource) Build(tpc *comm.Communicator) (*model.FoundationModel, error) {
	m, err := buildTopology(s.arch, "dchag", tpc)
	if err != nil {
		return nil, err
	}
	m.SetEval(true)
	return m, nil
}

// ckptSource serves a dchag-ckpt/v1 checkpoint, resharding to the serving
// topology. The Checkpoint is opened once, read-only, and shared by every
// rank's Build.
type ckptSource struct {
	arch  model.Arch
	stage string
	ck    *ckpt.Checkpoint
}

// FromCheckpoint opens the newest complete checkpoint under dir (read-only;
// single-slot and keep-last-k retention layouts both resolve) and returns a
// Source that reshards it to the serving topology. The architecture comes
// from the manifest's arch record (ckpt.MetaArch, written by the training
// loops); checkpoints predating that record need FromCheckpointArch.
func FromCheckpoint(dir string) (Source, error) {
	ck, err := ckpt.OpenLatest(dir)
	if err != nil {
		return nil, err
	}
	blob, ok := ck.Manifest.Meta[ckpt.MetaArch]
	if !ok {
		return nil, fmt.Errorf("serve: checkpoint %s has no architecture record (%s); re-save it with this version or use FromCheckpointArch", dir, ckpt.MetaArch)
	}
	var arch model.Arch
	if err := json.Unmarshal([]byte(blob), &arch); err != nil {
		return nil, fmt.Errorf("serve: decoding checkpoint architecture: %w", err)
	}
	return newCkptSource(ck, arch), nil
}

// FromCheckpointArch is FromCheckpoint for checkpoints whose manifest
// predates the arch record: the caller supplies the architecture the
// checkpoint was trained with.
func FromCheckpointArch(dir string, arch model.Arch) (Source, error) {
	ck, err := ckpt.OpenLatest(dir)
	if err != nil {
		return nil, err
	}
	return newCkptSource(ck, arch), nil
}

func newCkptSource(ck *ckpt.Checkpoint, arch model.Arch) Source {
	// The logical partition count is a model property recorded in the
	// manifest; it, not the saving rank count, constrains the serving
	// topology.
	arch.Partitions = ck.Manifest.Partitions
	stage := ck.Manifest.Meta[ckpt.MetaStage]
	if stage == "" {
		stage = "dchag"
	}
	return ckptSource{arch: arch, stage: stage, ck: ck}
}

func (s ckptSource) Arch() model.Arch { return s.arch }

func (s ckptSource) Build(tpc *comm.Communicator) (*model.FoundationModel, error) {
	m, err := buildTopology(s.arch, s.stage, tpc)
	if err != nil {
		return nil, err
	}
	if err := s.ck.RestoreParams(m.Params()); err != nil {
		return nil, err
	}
	m.SetEval(true)
	return m, nil
}

// buildTopology constructs the model slice for one rank of a q-wide TP
// group: the plain serial model for "serial"-stage checkpoints (q must be
// 1), the serial D-CHAG equivalent at q=1, the distributed slice otherwise.
func buildTopology(arch model.Arch, stage string, tpc *comm.Communicator) (*model.FoundationModel, error) {
	q := tpc.Size()
	partitions := arch.Partitions
	if partitions == 0 {
		partitions = q
		arch.Partitions = q
	}
	if stage == "serial" {
		if q != 1 {
			return nil, fmt.Errorf("serve: a %q-stage checkpoint has no channel sharding; serve it with Ranks=1, not %d", stage, q)
		}
		return model.NewSerial(arch), nil
	}
	if partitions%q != 0 {
		return nil, fmt.Errorf("serve: %d serving ranks do not divide the model's %d logical partitions", q, partitions)
	}
	if q == 1 {
		return model.NewSerialDCHAGEquivalent(arch, partitions), nil
	}
	return model.NewDistributed(arch, tpc, false), nil
}
