package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs"
)

// Routing errors.
var (
	// ErrTenantBusy is the per-tenant admission rejection: the tenant has
	// reached its in-flight request bound. Other tenants are unaffected —
	// that isolation is the point.
	ErrTenantBusy = errors.New("serve: tenant in-flight limit reached")
	// ErrUnknownModel reports a request routed to a model name the router
	// does not serve.
	ErrUnknownModel = errors.New("serve: unknown model")
)

// RouterConfig sizes a Router.
type RouterConfig struct {
	// Ranks and Replicas shape the shared Host's mesh, exactly as in
	// Config: every model added to the router serves at this topology.
	Ranks    int
	Replicas int
	// TenantSlots bounds each tenant's concurrently in-flight requests
	// (admission control per tenant: beyond it, Do returns ErrTenantBusy).
	// 0 defaults to 32. Per-tenant overrides via SetTenantSlots.
	TenantSlots int
	// Trace, when non-nil, traces the shared host and every engine added to
	// the router (see Config.Trace for the row convention).
	Trace *obs.Tracer
}

// Router serves several models to several tenants over one shared Host —
// one dist.Mesh, many engines. Each model is an Engine (own queue, batcher,
// cache, metrics, hot swap); each tenant gets an in-flight bound and its
// own counters so one tenant's burst saturates its own slots, not the
// queue every other tenant depends on.
type Router struct {
	host  *Host
	slots int

	mu      sync.RWMutex
	engines map[string]*Engine // guarded by mu
	tenants map[string]*tenant // guarded by mu
}

// tenant is one traffic source's admission state.
type tenant struct {
	slots chan struct{} // semaphore: one slot per in-flight request

	mu        sync.Mutex
	admitted  uint64 // guarded by mu
	rejected  uint64 // guarded by mu
	completed uint64 // guarded by mu
	failed    uint64 // guarded by mu
}

// NewRouter builds the shared Host and an empty routing table.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.TenantSlots == 0 {
		cfg.TenantSlots = 32
	}
	if cfg.TenantSlots < 1 {
		return nil, fmt.Errorf("serve: router needs TenantSlots >= 1, got %d", cfg.TenantSlots)
	}
	h, err := NewHostTraced(cfg.Ranks, cfg.Replicas, cfg.Trace)
	if err != nil {
		return nil, err
	}
	return &Router{
		host:    h,
		slots:   cfg.TenantSlots,
		engines: make(map[string]*Engine),
		tenants: make(map[string]*tenant),
	}, nil
}

// Host returns the router's shared compute host.
func (r *Router) Host() *Host { return r.host }

// AddModel loads src onto the shared host and routes name to it. The
// engine config's topology is overridden by the host's; queue, batching,
// dtype, and cache settings are per model.
func (r *Router) AddModel(name string, cfg Config, src Source) (*Engine, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: model name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.engines[name]; ok {
		return nil, fmt.Errorf("serve: model %q already routed", name)
	}
	e, err := StartOn(r.host, cfg, src)
	if err != nil {
		return nil, err
	}
	r.engines[name] = e
	return e, nil
}

// RemoveModel stops routing name and closes its engine (the host keeps
// serving every other model).
func (r *Router) RemoveModel(name string) error {
	r.mu.Lock()
	e, ok := r.engines[name]
	delete(r.engines, name)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return e.Close()
}

// Engine returns the engine serving name.
func (r *Router) Engine(name string) (*Engine, bool) {
	r.mu.RLock()
	e, ok := r.engines[name]
	r.mu.RUnlock()
	return e, ok
}

// Models lists the routed model names (unordered).
func (r *Router) Models() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.engines))
	for name := range r.engines {
		names = append(names, name)
	}
	r.mu.RUnlock()
	return names
}

// Swap hot-swaps the named model (see Engine.Swap).
func (r *Router) Swap(name string, src Source) error {
	e, ok := r.Engine(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return e.Swap(src)
}

// SetTenantSlots overrides one tenant's in-flight bound (creating the
// tenant if new). In-flight requests keep their old slots; the new bound
// applies to subsequent admissions.
func (r *Router) SetTenantSlots(name string, n int) {
	if n < 1 {
		n = 1
	}
	t := &tenant{slots: make(chan struct{}, n)}
	r.mu.Lock()
	r.tenants[name] = t
	r.mu.Unlock()
}

// tenantFor resolves (or creates, at the default bound) a tenant record.
func (r *Router) tenantFor(name string) *tenant {
	r.mu.RLock()
	t := r.tenants[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.tenants[name]; t == nil {
		t = &tenant{slots: make(chan struct{}, r.slots)}
		r.tenants[name] = t
	}
	return t
}

// Do routes one request from tenantName to modelName and waits for the
// response. Admission is two-staged: the tenant's in-flight bound first
// (ErrTenantBusy — the burst isolation), then the model engine's own queue
// (ErrQueueFull — the compute backpressure).
func (r *Router) Do(ctx context.Context, tenantName, modelName string, req *Request) (Response, error) {
	e, ok := r.Engine(modelName)
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownModel, modelName)
	}
	t := r.tenantFor(tenantName)
	select {
	case t.slots <- struct{}{}:
	default:
		t.mu.Lock()
		t.rejected++
		t.mu.Unlock()
		return Response{}, ErrTenantBusy
	}
	defer func() { <-t.slots }()
	t.mu.Lock()
	t.admitted++
	t.mu.Unlock()
	resp, err := e.Do(ctx, req)
	t.mu.Lock()
	if err != nil {
		t.failed++
	} else {
		t.completed++
	}
	t.mu.Unlock()
	return resp, err
}

// TenantSnapshot is one tenant's admission counters.
type TenantSnapshot struct {
	// Admitted and Rejected count requests past and refused at the tenant
	// bound; Completed and Failed split the admitted by outcome. Slots and
	// InFlight report the bound and its current occupancy.
	Admitted, Rejected uint64
	Completed, Failed  uint64
	Slots, InFlight    int
}

// TenantStats snapshots every tenant seen so far.
func (r *Router) TenantStats() map[string]TenantSnapshot {
	r.mu.RLock()
	out := make(map[string]TenantSnapshot, len(r.tenants))
	for name, t := range r.tenants {
		t.mu.Lock()
		out[name] = TenantSnapshot{
			Admitted:  t.admitted,
			Rejected:  t.rejected,
			Completed: t.completed,
			Failed:    t.failed,
			Slots:     cap(t.slots),
			InFlight:  len(t.slots),
		}
		t.mu.Unlock()
	}
	r.mu.RUnlock()
	return out
}

// Close closes every engine (draining their in-flight work) and then the
// shared host. Idempotent through the engines' and host's own idempotence;
// returns the host's terminal error.
func (r *Router) Close() error {
	r.mu.Lock()
	engines := make([]*Engine, 0, len(r.engines))
	for name, e := range r.engines {
		engines = append(engines, e)
		delete(r.engines, name)
	}
	r.mu.Unlock()
	for _, e := range engines {
		//lint:ignore commerr engine close errors surface as the host's terminal error below
		e.Close()
	}
	return r.host.Close()
}

// Handler returns the router's HTTP surface:
//
//	POST /v1/models/{model}/predict — one request; tenant from X-Tenant
//	                                  (default "default"), 429 + Retry-After
//	                                  on tenant or queue rejection
//	GET  /v1/models/{model}/stats   — that engine's metrics Snapshot
//	GET  /v1/models                 — routed model names
//	GET  /v1/tenants                — per-tenant admission counters
//	GET  /metrics                   — Prometheus text format: every model's
//	                                  series labeled model="name", tenant
//	                                  counters labeled tenant="name"
//	GET  /healthz                   — 200 while the host is live
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{model}/predict", func(w http.ResponseWriter, req *http.Request) {
		model := req.PathValue("model")
		tenantName := req.Header.Get("X-Tenant")
		if tenantName == "" {
			tenantName = "default"
		}
		servePredict(w, req, func(ctx context.Context, sreq *Request) (Response, error) {
			return r.Do(ctx, tenantName, model, sreq)
		})
	})
	mux.HandleFunc("GET /v1/models/{model}/stats", func(w http.ResponseWriter, req *http.Request) {
		e, ok := r.Engine(req.PathValue("model"))
		if !ok {
			http.Error(w, ErrUnknownModel.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, e.Metrics().Snapshot())
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Models())
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.TenantStats())
	})
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if r.host.Err() != nil {
			http.Error(w, "host stopped", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
