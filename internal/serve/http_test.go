package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/tensor"
)

// TestHTTPPredict round-trips a request through the JSON endpoint and pins
// the answer against the in-process Do path.
func TestHTTPPredict(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 2, Replicas: 1, MaxBatch: 4, MaxWait: 2 * time.Millisecond}, FromArch(a))
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	x := testInput(a, 60, a.ImgH, a.ImgW)
	want, err := e.Do(context.Background(), &Request{Input: x.Clone()})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(PredictRequest{ID: "h1", Shape: x.Shape, Values: x.Data})
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.ID != "h1" || pr.BatchSize < 1 || pr.TotalMs < pr.QueuedMs {
		t.Fatalf("bad response metadata: %+v", pr)
	}
	got := tensor.FromSlice(pr.Values, pr.Shape...)
	if d := tensor.MaxAbsDiff(got, want.Output); d != 0 {
		t.Fatalf("HTTP answer differs from in-process answer by %g", d)
	}
}

// TestHTTPStatsAndHealth pins the observability endpoints across the
// engine's lifecycle.
func TestHTTPStatsAndHealth(t *testing.T) {
	a := testArch()
	e, err := Start(Config{Ranks: 1, Replicas: 1, MaxBatch: 2}, FromArch(a))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	if _, err := e.Do(context.Background(), &Request{Input: testInput(a, 61, a.ImgH, a.ImgW)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Completed != 1 {
		t.Fatalf("stats report %d completed, want 1", snap.Completed)
	}

	if resp, err = http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d while live", resp.StatusCode)
	}

	if err := e.Close(); err != nil {
		t.Fatalf("clean Close returned %v", err)
	}
	if resp, err = http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d after Close, want 503", resp.StatusCode)
	}
}

// TestHTTPBadRequests pins the 4xx paths.
func TestHTTPBadRequests(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 1, Replicas: 1, MaxBatch: 1}, FromArch(a))
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	for name, body := range map[string]string{
		"not-json":       "{",
		"bad-shape":      `{"shape":[2,2],"values":[1,2,3,4]}`,
		"numel-mismatch": `{"shape":[1,2,2],"values":[1]}`,
		"wrong-channels": `{"shape":[3,4,4],"values":` + zeros(48) + `}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// zeros renders a JSON array of n zeros.
func zeros(n int) string {
	b := []byte{'['}
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '0')
	}
	return string(append(b, ']'))
}
