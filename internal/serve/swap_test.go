package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/leakcheck"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

// trainSteps is trainCheckpoint with a controllable step count, so two
// checkpoints of the same architecture get genuinely different weights.
func trainSteps(t *testing.T, dir string, ranks, steps int) model.Arch {
	t.Helper()
	a := testArch()
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 8, Channels: a.Channels, ImgH: a.ImgH, ImgW: a.ImgW,
		Endmembers: 2, Noise: 0.01, Seed: 9,
	})
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*2, 2)
		return x, x
	}
	opts := train.Options{
		Steps: steps, Batch: 2, LR: 1e-3, MaskRatio: 0.5, Seed: 11,
		CheckpointDir: dir,
	}
	if _, _, err := train.Distributed(a, ranks, false, opts, batch); err != nil {
		t.Fatal(err)
	}
	return a
}

// serialOracle restores a checkpoint into the serial-equivalent model — the
// bitwise ground truth for what serving that checkpoint must answer.
func serialOracle(t *testing.T, dir string) *model.FoundationModel {
	t.Helper()
	src, err := FromCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := src.(ckptSource)
	sm := model.NewSerialDCHAGEquivalent(cs.arch, cs.arch.Partitions)
	if err := cs.ck.RestoreParams(sm.Params()); err != nil {
		t.Fatal(err)
	}
	return sm
}

func predictOracle(sm *model.FoundationModel, a model.Arch, x *tensor.Tensor) *tensor.Tensor {
	return sm.PredictImage(x.Reshape(1, a.Channels, a.ImgH, a.ImgW)).Reshape(a.Channels, a.ImgH, a.ImgW)
}

// TestSwapUnderLoad is the hot-swap acceptance test: a loadgen hammers the
// engine while a newly trained checkpoint is swapped in. Zero requests may
// fail or drop, the stats must show exactly one swap, and once the swap
// lands the engine answers bitwise for the new checkpoint. The leakcheck
// pins that draining the old instance strands no goroutine.
func TestSwapUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	dir1, dir2 := t.TempDir(), t.TempDir()
	a := trainSteps(t, dir1, 4, 2)
	trainSteps(t, dir2, 4, 4) // more steps: same geometry, different weights

	src1, err := FromCheckpoint(dir1)
	if err != nil {
		t.Fatal(err)
	}
	src2, err := FromCheckpoint(dir2)
	if err != nil {
		t.Fatal(err)
	}
	e := startTest(t, Config{
		Ranks: 2, Replicas: 2, MaxBatch: 4, MaxWait: 2 * time.Millisecond,
		QueueDepth: 64, CacheBytes: 1 << 20,
	}, src1)

	inputs := make([]*tensor.Tensor, 4)
	for i := range inputs {
		inputs[i] = testInput(a, int64(60+i), a.ImgH, a.ImgW)
	}
	loadDone := make(chan LoadgenResult, 1)
	go func() {
		loadDone <- RunLoadgen(e, LoadgenOptions{
			Requests:    600,
			Concurrency: 8,
			NewRequest: func(i int) *Request {
				return &Request{Input: inputs[i%len(inputs)]}
			},
		})
	}()
	// Swap once traffic is demonstrably flowing, so batches formed against
	// the old instance are genuinely in flight when routing flips.
	for e.Metrics().Snapshot().Completed+e.Metrics().Snapshot().CacheHits == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := e.Swap(src2); err != nil {
		t.Fatalf("swap under load: %v", err)
	}
	res := <-loadDone
	if res.Errors != 0 {
		t.Fatalf("%d of %d requests failed across the swap", res.Errors, res.Requests)
	}
	snap := e.Metrics().Snapshot()
	if snap.Swaps != 1 {
		t.Fatalf("stats show %d swaps, want exactly 1", snap.Swaps)
	}
	if snap.Failed != 0 {
		t.Fatalf("%d requests failed engine-side across the swap", snap.Failed)
	}

	// The engine now answers for the new checkpoint, bitwise.
	sm2 := serialOracle(t, dir2)
	x := testInput(a, 70, a.ImgH, a.ImgW)
	resp, err := e.Do(context.Background(), &Request{Input: x})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(resp.Output, predictOracle(sm2, a, x)); d != 0 {
		t.Fatalf("post-swap answer differs from the new checkpoint's serial restore by %g", d)
	}
}

// TestSwapInvalidatesCache pins the cache/swap interaction: entries cached
// against the old model must not survive the swap, and the new model's
// answers repopulate the cache under fresh fingerprints.
func TestSwapInvalidatesCache(t *testing.T) {
	a := testArch()
	a2 := a
	a2.Seed = 7 // same geometry, different weights
	cfg := cacheTestConfig()
	e := startTest(t, cfg, FromArch(a))
	x := testInput(a, 55, a.ImgH, a.ImgW)

	cold, err := e.Do(context.Background(), &Request{Input: x})
	if err != nil {
		t.Fatal(err)
	}
	if hot, err := e.Do(context.Background(), &Request{Input: x}); err != nil || !hot.Cached {
		t.Fatalf("pre-swap resubmission not cached (err %v)", err)
	}

	if err := e.Swap(FromArch(a2)); err != nil {
		t.Fatal(err)
	}
	fresh, err := e.Do(context.Background(), &Request{Input: x})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached {
		t.Fatal("post-swap request served from the old model's cache")
	}
	if d := tensor.MaxAbsDiff(fresh.Output, reference(t, a2, x)); d != 0 {
		t.Fatalf("post-swap answer differs from the new model by %g", d)
	}
	if d := tensor.MaxAbsDiff(fresh.Output, cold.Output); d == 0 {
		t.Fatal("swapped models answered identically; the swap test proves nothing")
	}
	if hot, err := e.Do(context.Background(), &Request{Input: x}); err != nil || !hot.Cached {
		t.Fatalf("post-swap resubmission not re-cached (err %v)", err)
	}
}

// TestSwapGeometryMismatch pins the guard: a source whose request geometry
// differs is rejected and the engine keeps serving its current model.
func TestSwapGeometryMismatch(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{Ranks: 1, Replicas: 1, MaxBatch: 2}, FromArch(a))
	bad := a
	bad.Channels = 4
	bad.Partitions = 2
	if err := e.Swap(FromArch(bad)); err == nil {
		t.Fatal("swap accepted a geometry-incompatible source")
	}
	x := testInput(a, 56, a.ImgH, a.ImgW)
	if _, err := e.Do(context.Background(), &Request{Input: x}); err != nil {
		t.Fatalf("engine stopped serving after a rejected swap: %v", err)
	}
	if snap := e.Metrics().Snapshot(); snap.Swaps != 0 {
		t.Fatalf("rejected swap was counted: %+v", snap)
	}
}

// TestAutoSwapLiveCheckpoint is live model replication end to end: an
// engine serves a checkpoint directory while training overwrites it at a
// higher step; the AutoSwap watcher notices the committed manifest and hot
// swaps, after which the engine answers for the new weights bitwise.
func TestAutoSwapLiveCheckpoint(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	a := trainSteps(t, dir, 2, 2)
	src, err := FromCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := startTest(t, Config{
		Ranks: 2, Replicas: 1, MaxBatch: 4, MaxWait: 2 * time.Millisecond,
		CacheBytes: 1 << 20,
	}, src)

	swapped := make(chan error, 16)
	stop := e.AutoSwap(dir, ckpt.WatchOptions{Interval: 2 * time.Millisecond}, func(u ckpt.Update, err error) {
		swapped <- err
	})
	defer stop()

	// Training overwrites the single-slot checkpoint in place; the manifest
	// (written last) commits it at step 4.
	trainSteps(t, dir, 2, 4)
	select {
	case err := <-swapped:
		if err != nil {
			t.Fatalf("auto swap failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no auto swap within 10s of the new checkpoint committing")
	}
	if snap := e.Metrics().Snapshot(); snap.Swaps != 1 {
		t.Fatalf("stats show %d swaps, want exactly 1", snap.Swaps)
	}
	sm := serialOracle(t, dir)
	x := testInput(a, 71, a.ImgH, a.ImgW)
	resp, err := e.Do(context.Background(), &Request{Input: x})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(resp.Output, predictOracle(sm, a, x)); d != 0 {
		t.Fatalf("post-auto-swap answer differs from the new checkpoint's serial restore by %g", d)
	}
}
