package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// job is one queued request together with its response slot.
type job struct {
	req  *Request
	enq  time.Time
	done chan Response // buffered 1: the responder never blocks
	// key is the request's cache fingerprint when the cache is enabled
	// (keyed); the job owns an in-flight cache entry that a completion
	// fills and a failure aborts.
	key   fingerprint
	keyed bool
}

// batchJob is one assembled micro-batch headed for a replica, tagged with
// the engine it answers to and the model instance it must run on.
type batchJob struct {
	e      *Engine
	inst   *instance
	jobs   []*job
	x      *tensor.Tensor // [B, C, H, W] on the model grid
	formed time.Time
}

// fail answers every job in the batch with ErrClosed and releases the
// batch's resources (teardown paths).
func (bj *batchJob) fail() {
	bj.e.failJobs(bj.jobs)
	bj.release()
}

// release returns the pooled batch tensor and retires the batch from its
// instance's in-flight count. Called exactly once per dispatched batch.
func (bj *batchJob) release() {
	if bj.x != nil {
		tensor.DefaultPool.PutTensor(bj.x)
		bj.x = nil
	}
	bj.inst.wg.Done()
}

// Engine is one served model behind a bounded queue, a dynamic
// micro-batcher, and (optionally) a content-addressable response cache. The
// compute lives in a Host — Start builds a private one, StartOn attaches to
// a shared one so several engines (multi-tenant routing) multiplex the same
// mesh. Stop an engine with Close; hot-swap its model with Swap.
type Engine struct {
	cfg     Config
	arch    model.Arch // request geometry; invariant across swaps
	host    *Host
	owns    bool // Close tears the host down too
	metrics *Metrics
	cache   *cache    // nil when Config.CacheBytes == 0
	row     *obs.Rank // front-end lifecycle row (host tracer's last); nil when tracing off

	queue       chan *job
	quit        chan struct{} // closed by Close: stop admission, wind down
	batcherDone chan struct{} // closed when batchLoop has exited
	dead        chan struct{} // closed when the engine has fully stopped

	closeOnce sync.Once
	runErr    error // written before dead closes

	// instMu orders request routing against hot swap: the batcher acquires
	// the current instance (and bumps its in-flight count) under the read
	// lock, Swap replaces the pointer under the write lock, so after Swap
	// returns the lock no new batch can target the old instance.
	instMu sync.RWMutex
	inst   *instance // guarded by instMu

	// swapMu serializes Swap calls against each other.
	swapMu sync.Mutex
}

// Start builds a private Host (TP=cfg.Ranks per replica, DP=cfg.Replicas),
// loads the model onto every rank — for checkpoint sources, restores it —
// and begins serving. It returns only after the model is loaded, so a
// checkpoint/topology mismatch surfaces here rather than on the first
// request. Close tears down the engine and its host.
func Start(cfg Config, src Source) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h, err := NewHostTraced(cfg.Ranks, cfg.Replicas, cfg.Trace)
	if err != nil {
		return nil, err
	}
	e, err := startOn(h, cfg, src, true)
	if err != nil {
		//lint:ignore commerr the load error is the root cause; Close here only tears down the fresh host
		h.Close()
		return nil, err
	}
	return e, nil
}

// StartOn attaches a new engine to an existing Host, loading src beside
// whatever the host already serves. The engine adopts the host's topology
// (Config.Ranks/Replicas are overridden); Close stops the engine but leaves
// the host running.
func StartOn(h *Host, cfg Config, src Source) (*Engine, error) {
	return startOn(h, cfg, src, false)
}

func startOn(h *Host, cfg Config, src Source, owns bool) (*Engine, error) {
	cfg.Ranks, cfg.Replicas = h.ranks, h.replicas
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	inst, err := h.load(src, cfg.DType)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		arch:        inst.arch,
		host:        h,
		owns:        owns,
		metrics:     NewMetrics(),
		row:         h.trace.Rank(h.trace.Rows() - 1),
		queue:       make(chan *job, cfg.QueueDepth),
		quit:        make(chan struct{}),
		batcherDone: make(chan struct{}),
		dead:        make(chan struct{}),
		inst:        inst,
	}
	if cfg.CacheBytes > 0 {
		e.cache = newCache(cfg.CacheBytes)
	}
	if !h.addSender() {
		h.unload(inst)
		return nil, ErrClosed
	}
	go e.batchLoop()
	go e.supervise()
	return e, nil
}

// Arch returns the served architecture (request geometry: Channels x ImgH x
// ImgW). It is invariant across hot swaps — Swap enforces it.
func (e *Engine) Arch() model.Arch { return e.arch }

// Metrics returns the engine's metrics aggregator.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Host returns the compute host this engine dispatches to.
func (e *Engine) Host() *Host { return e.host }

// Done is closed when the engine has fully stopped (Close finished or the
// host failed); Err then reports why.
func (e *Engine) Done() <-chan struct{} { return e.dead }

// Err returns the terminal error once Done is closed (nil for a clean
// Close), nil while the engine is running.
func (e *Engine) Err() error {
	select {
	case <-e.dead:
		return e.runErr
	default:
		return nil
	}
}

// Close stops admission, fails requests still waiting in the queue, lets
// in-flight batches finish, and detaches from the host — tearing the host
// down too if this engine owns it (Start) rather than shares it (StartOn).
// It is idempotent and returns the engine's terminal error.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.dead
	return e.runErr
}

// supervise is the engine's teardown path: it waits for a close or a host
// end, retires the batcher and queue, drains the current instance, and
// settles the terminal error.
func (e *Engine) supervise() {
	select {
	case <-e.quit:
	case <-e.host.quit:
	case <-e.host.failed:
	}
	// The batcher exits on the same signals; after it no new batch can be
	// assembled, so the queue drain below is final.
	<-e.batcherDone
	e.drainQueue()
	// Dispatched batches finish normally (clean close: workers still
	// serving) or are failed by the worker/host teardown (host end); either
	// way each calls release exactly once and the in-flight count drains.
	e.instMu.RLock()
	inst := e.inst
	e.instMu.RUnlock()
	inst.wg.Wait()
	e.host.unload(inst)
	if e.owns {
		e.runErr = e.host.Close()
	} else {
		// A shared host that ended under us carries the root cause; a
		// healthy shared host stays untouched.
		select {
		case <-e.host.quit:
			e.runErr = e.host.Close()
		case <-e.host.failed:
			<-e.host.dead
			e.runErr = e.host.runErr
		default:
		}
	}
	close(e.dead)
}

// closedForSubmit reports whether admission is shut.
func (e *Engine) closedForSubmit() bool {
	select {
	case <-e.quit:
		return true
	case <-e.dead:
		return true
	case <-e.host.quit:
		return true
	case <-e.host.failed:
		return true
	default:
		return false
	}
}

// Submit validates and enqueues a request, returning the channel its
// Response will arrive on. It never blocks: a full queue is an ErrQueueFull
// rejection (admission control), a closed engine an ErrClosed. With the
// cache enabled, a content hit answers immediately without queuing
// (Response.Cached) and identical in-flight requests coalesce onto one
// forward. Callers waiting on the returned channel should also select on
// Done in case the engine stops first; Do wraps exactly that.
func (e *Engine) Submit(req *Request) (<-chan Response, error) {
	if err := e.validateRequest(req); err != nil {
		return nil, err
	}
	if e.closedForSubmit() {
		return nil, ErrClosed
	}
	enq := time.Now()
	var key fingerprint
	keyed := false
	if e.cache != nil {
		e.instMu.RLock()
		instID := e.inst.id
		e.instMu.RUnlock()
		key = fingerprintOf(instID, e.cfg.DType, req)
		keyed = true
		if out := e.cache.get(key); out != nil {
			e.metrics.noteHit(time.Since(enq))
			e.row.Instant("cache-hit", "serve")
			ch := make(chan Response, 1)
			ch <- Response{ID: req.ID, Output: out, Cached: true, Total: time.Since(enq)}
			return ch, nil
		}
		if hit, ch := e.cache.joinOrOwn(key, req.ID, enq); hit != nil {
			e.metrics.noteHit(time.Since(enq))
			e.row.Instant("cache-hit", "serve")
			rch := make(chan Response, 1)
			rch <- Response{ID: req.ID, Output: hit, Cached: true, Total: time.Since(enq)}
			return rch, nil
		} else if ch != nil {
			e.metrics.noteCoalesced()
			e.row.Instant("coalesce", "serve")
			return ch, nil
		}
		e.metrics.noteMiss()
	}
	j := &job{req: req, enq: enq, done: make(chan Response, 1), key: key, keyed: keyed}
	select {
	case e.queue <- j:
		e.row.Instant("enqueue", "serve")
		// Close may have raced in between the admission check and the
		// enqueue — after the batcher's final drain, nothing would ever
		// serve or fail this job. Re-check and rescue: draining here fails
		// every stranded job (ours included) with ErrClosed.
		if e.closedForSubmit() {
			e.drainQueue()
		}
		e.metrics.noteDepth(len(e.queue))
		return j.done, nil
	default:
		if keyed {
			e.failFlight(key, ErrQueueFull)
		}
		e.metrics.noteRejected()
		e.row.Instant("reject", "serve")
		return nil, ErrQueueFull
	}
}

// failFlight abandons a job's in-flight cache entry and fails any requests
// that coalesced onto it with the same error, so they retry like the owner.
func (e *Engine) failFlight(key fingerprint, err error) {
	for _, w := range e.cache.abort(key) {
		w.ch <- Response{ID: w.id, Err: err}
	}
}

// Do submits a request and waits for its response, the context, or engine
// shutdown — whichever comes first.
func (e *Engine) Do(ctx context.Context, req *Request) (Response, error) {
	ch, err := e.Submit(req)
	if err != nil {
		return Response{}, err
	}
	result := func(r Response) (Response, error) { return r, r.Err }
	select {
	case r := <-ch:
		return result(r)
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-e.dead:
		// The response may have raced the shutdown in.
		select {
		case r := <-ch:
			return result(r)
		default:
		}
		if e.runErr != nil {
			return Response{}, e.runErr
		}
		return Response{}, ErrClosed
	}
}

// validateRequest checks a request against the served architecture before
// it is admitted, so batch assembly can never fail.
func (e *Engine) validateRequest(req *Request) error {
	a := e.arch
	if req == nil || req.Input == nil {
		return fmt.Errorf("serve: request has no input")
	}
	if len(req.Input.Shape) != 3 || req.Input.Shape[1] < 1 || req.Input.Shape[2] < 1 {
		return fmt.Errorf("serve: input must be [c,h,w], got %v", req.Input.Shape)
	}
	c := req.Input.Shape[0]
	if req.Channels == nil {
		if c != a.Channels {
			return fmt.Errorf("serve: input has %d channels, model wants %d (name a subset via Channels)", c, a.Channels)
		}
		return nil
	}
	if len(req.Channels) != c {
		return fmt.Errorf("serve: Channels lists %d entries for %d input rows", len(req.Channels), c)
	}
	prev := -1
	for _, ch := range req.Channels {
		if ch <= prev || ch >= a.Channels {
			return fmt.Errorf("serve: channel indices must be strictly increasing in [0,%d), got %v", a.Channels, req.Channels)
		}
		prev = ch
	}
	return nil
}

// batchLoop is the dynamic micro-batcher: it blocks for the first request,
// then accumulates until the batch is full or the oldest request has waited
// MaxWait, then hands the assembled batch to the host's replicas.
func (e *Engine) batchLoop() {
	defer close(e.batcherDone)
	defer e.host.senders.Done()
	for {
		var first *job
		select {
		case first = <-e.queue:
		case <-e.quit:
			e.drainQueue()
			return
		case <-e.host.quit:
			e.drainQueue()
			return
		case <-e.host.failed:
			e.drainQueue()
			return
		}
		sp := e.row.Begin("batch-collect", "serve")
		batch := e.collect(first)
		sp.End()
		select {
		case <-e.quit:
			e.failJobs(batch)
			e.drainQueue()
			return
		case <-e.host.quit:
			e.failJobs(batch)
			e.drainQueue()
			return
		case <-e.host.failed:
			e.failJobs(batch)
			e.drainQueue()
			return
		default:
		}
		asm := e.row.Begin("batch-assemble", "serve")
		bj := e.assemble(batch)
		asm.End()
		dsp := e.row.Begin("dispatch-wait", "serve")
		select {
		case e.host.work <- bj:
			dsp.End()
		case <-e.host.failed:
			dsp.End()
			bj.fail()
			e.drainQueue()
			return
		}
	}
}

// collect accumulates up to MaxBatch jobs behind first. A full batch
// flushes immediately; a partial batch flushes early the moment the queue
// is empty while dispatch capacity is free (waiting for stragglers would
// idle a replica — the batcher must never trade capacity for batch size),
// and otherwise at the MaxWait deadline, which bounds the extra wait a
// request can absorb when every replica is busy anyway.
func (e *Engine) collect(first *job) []*job {
	batch := []*job{first}
	if e.cfg.MaxBatch == 1 {
		return batch
	}
	// The deadline is counted from the oldest request's enqueue, not from
	// dequeue: time the request already spent queued behind busy replicas
	// counts against its batching wait.
	timer := time.NewTimer(time.Until(first.enq.Add(e.cfg.MaxWait)))
	defer timer.Stop()
	for len(batch) < e.cfg.MaxBatch {
		select {
		case j := <-e.queue:
			batch = append(batch, j)
			continue
		default:
		}
		// Queue momentarily empty: flush now if a dispatch slot is free.
		if len(e.host.work) < cap(e.host.work) {
			return batch
		}
		select {
		case j := <-e.queue:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-e.quit:
			return batch
		case <-e.host.quit:
			return batch
		case <-e.host.failed:
			return batch
		}
	}
	return batch
}

// assemble builds the [B, C, H, W] batch tensor: every input regridded to
// the model grid and scattered onto its channel rows (partial channel sets
// leave the others zero — the normalized-data mean). The tensor comes from
// the process-wide pool and is returned to it by complete (or by the
// teardown drain), so steady-state batch assembly allocates nothing beyond
// the batch descriptor. The batch acquires the engine's current instance
// under the routing read lock — the swap ordering hinges on the Add
// happening before the lock is released.
//
// dchag:hotpath — the serve dispatch loop runs this once per micro-batch.
func (e *Engine) assemble(jobs []*job) *batchJob {
	e.instMu.RLock()
	inst := e.inst
	inst.wg.Add(1)
	e.instMu.RUnlock()
	a := e.arch
	hw := a.ImgH * a.ImgW
	x := tensor.DefaultPool.GetTensor(len(jobs), a.Channels, a.ImgH, a.ImgW)
	x.Zero() // pooled buffers come back dirty; unlisted channels must read 0
	for i, j := range jobs {
		in := j.req.Input
		if in.Shape[1] != a.ImgH || in.Shape[2] != a.ImgW {
			in = data.RegridBatch(in, a.ImgH, a.ImgW)
		}
		for r := 0; r < in.Shape[0]; r++ {
			ch := r
			if j.req.Channels != nil {
				ch = j.req.Channels[r]
			}
			copy(x.Data[(i*a.Channels+ch)*hw:(i*a.Channels+ch+1)*hw], in.Data[r*hw:(r+1)*hw])
		}
	}
	return &batchJob{e: e, inst: inst, jobs: jobs, x: x, formed: time.Now()}
}

// drainQueue fails every job still waiting in the queue (teardown path).
func (e *Engine) drainQueue() {
	for {
		select {
		case j := <-e.queue:
			e.failJob(j)
		default:
			return
		}
	}
}

func (e *Engine) failJobs(jobs []*job) {
	for _, j := range jobs {
		e.failJob(j)
	}
}

func (e *Engine) failJob(j *job) {
	e.metrics.noteFailed()
	if j.keyed {
		e.failFlight(j.key, ErrClosed)
	}
	j.done <- Response{ID: j.req.ID, Err: ErrClosed}
}

// complete unpatchifies a replica's prediction, fans the per-request
// responses back out, and — when the cache is on — fills each request's
// in-flight cache entry, answering every coalesced waiter with the shared
// output.
func (e *Engine) complete(bj *batchJob, pred *tensor.Tensor) {
	sp := e.row.Begin("respond", "serve")
	defer sp.End()
	a := e.arch
	imgs := model.Unpatchify(pred, a.Channels, a.ImgH, a.ImgW, a.Patch)
	tensor.DefaultPool.PutTensor(bj.x) // the batch tensor is consumed
	bj.x = nil
	now := time.Now()
	b := len(bj.jobs)
	e.metrics.noteBatch(b)
	for i, j := range bj.jobs {
		out := tensor.SliceAxis(imgs, 0, i, i+1).Reshape(a.Channels, a.ImgH, a.ImgW)
		resp := Response{
			ID:        j.req.ID,
			Output:    out,
			BatchSize: b,
			Queued:    bj.formed.Sub(j.enq),
			Total:     now.Sub(j.enq),
		}
		e.metrics.observe(resp)
		j.done <- resp
		if j.keyed {
			e.row.Instant("cache-fill", "serve")
			for _, w := range e.cache.fill(j.key, bj.inst.id, out) {
				w.ch <- Response{
					ID:        w.id,
					Output:    out,
					BatchSize: b,
					Cached:    true,
					Total:     now.Sub(w.enq),
				}
			}
		}
	}
	bj.release()
}
