package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/tensor"
)

// job is one queued request together with its response slot.
type job struct {
	req  *Request
	enq  time.Time
	done chan Response // buffered 1: the responder never blocks
}

// batchJob is one assembled micro-batch headed for a replica.
type batchJob struct {
	jobs   []*job
	x      *tensor.Tensor // [B, C, H, W] on the model grid
	formed time.Time
}

// Engine is a running serving instance: the bounded queue, the
// micro-batcher, and Ranks*Replicas mesh rank goroutines. Create one with
// Start and stop it with Close.
type Engine struct {
	cfg  Config
	src  Source
	arch model.Arch

	metrics     *Metrics
	queue       chan *job
	work        chan *batchJob
	quit        chan struct{} // closed by Close: stop admission, wind down
	failed      chan struct{} // closed on the first worker failure
	batcherDone chan struct{} // closed when batchLoop has exited
	dead        chan struct{} // closed when the engine has fully stopped

	closeOnce sync.Once
	failOnce  sync.Once
	runErr    error // written before dead closes
}

// Start builds the mesh (TP=cfg.Ranks per replica, DP=cfg.Replicas), has
// every rank construct — and, for checkpoint sources, restore — its model
// slice, and begins serving. It returns only after every rank is ready, so
// a checkpoint/topology mismatch surfaces here rather than on the first
// request.
func Start(cfg Config, src Source) (*Engine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:         cfg,
		src:         src,
		arch:        src.Arch(),
		metrics:     NewMetrics(),
		queue:       make(chan *job, cfg.QueueDepth),
		work:        make(chan *batchJob, cfg.Replicas),
		quit:        make(chan struct{}),
		failed:      make(chan struct{}),
		batcherDone: make(chan struct{}),
		dead:        make(chan struct{}),
	}
	spec := dist.MeshSpec{TP: cfg.Ranks, FSDP: 1, DP: cfg.Replicas}
	topo := dist.Topology{Nodes: 1, GPUsPerNode: spec.World()}
	if spec.World() > 8 && spec.World()%8 == 0 {
		topo = dist.Frontier(spec.World() / 8)
	}
	ready := make(chan error, spec.World())
	go func() {
		_, err := dist.RunMesh(spec, topo, func(rank int, m *dist.Mesh) error {
			return e.worker(rank, m, ready)
		})
		// Every worker has exited. Unblock the batcher if it is still
		// running (a worker failure means nobody will read work again),
		// wait for it, then fail any micro-batches stranded in the work
		// buffer — with both sides gone this drain has no concurrent
		// sender or receiver. On a clean Close the batcher exited first
		// and the workers drained the channel, so this finds nothing.
		e.fail()
		<-e.batcherDone
		for {
			bj, ok := e.takeWork()
			if !ok {
				break
			}
			e.failJobs(bj.jobs)
			tensor.DefaultPool.PutTensor(bj.x)
		}
		e.runErr = err
		close(e.dead)
	}()
	go e.batchLoop()
	for i := 0; i < spec.World(); i++ {
		select {
		case err := <-ready:
			if err != nil {
				//lint:ignore commerr the rank's own startup error is the root cause; Close here only tears down
				e.Close()
				return nil, err
			}
		case <-e.dead:
			//lint:ignore commerr runErr is read explicitly below; Close here only synchronizes the teardown
			e.Close()
			if e.runErr != nil {
				return nil, e.runErr
			}
			return nil, ErrClosed
		}
	}
	return e, nil
}

// Arch returns the served architecture (request geometry: Channels x ImgH x
// ImgW).
func (e *Engine) Arch() model.Arch { return e.arch }

// Metrics returns the engine's metrics aggregator.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Done is closed when the engine has fully stopped (Close finished or a
// worker failed); Err then reports why.
func (e *Engine) Done() <-chan struct{} { return e.dead }

// Err returns the terminal error once Done is closed (nil for a clean
// Close), nil while the engine is running.
func (e *Engine) Err() error {
	select {
	case <-e.dead:
		return e.runErr
	default:
		return nil
	}
}

// Close stops admission, fails requests still waiting in the queue, lets
// in-flight batches finish, and tears down the mesh. It is idempotent and
// returns the engine's terminal error.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.dead
	return e.runErr
}

// fail marks the engine failed (first worker error wins).
func (e *Engine) fail() {
	e.failOnce.Do(func() { close(e.failed) })
}

// Submit validates and enqueues a request, returning the channel its
// Response will arrive on. It never blocks: a full queue is an ErrQueueFull
// rejection (admission control), a closed engine an ErrClosed. Callers
// waiting on the returned channel should also select on Done in case the
// engine stops first; Do wraps exactly that.
func (e *Engine) Submit(req *Request) (<-chan Response, error) {
	if err := e.validateRequest(req); err != nil {
		return nil, err
	}
	select {
	case <-e.quit:
		return nil, ErrClosed
	case <-e.dead:
		return nil, ErrClosed
	default:
	}
	j := &job{req: req, enq: time.Now(), done: make(chan Response, 1)}
	select {
	case e.queue <- j:
		// Close may have raced in between the admission check and the
		// enqueue — after the batcher's final drain, nothing would ever
		// serve or fail this job. Re-check and rescue: draining here fails
		// every stranded job (ours included) with ErrClosed.
		select {
		case <-e.quit:
			e.drainQueue()
		case <-e.dead:
			e.drainQueue()
		default:
		}
		e.metrics.noteDepth(len(e.queue))
		return j.done, nil
	default:
		e.metrics.noteRejected()
		return nil, ErrQueueFull
	}
}

// Do submits a request and waits for its response, the context, or engine
// shutdown — whichever comes first.
func (e *Engine) Do(ctx context.Context, req *Request) (Response, error) {
	ch, err := e.Submit(req)
	if err != nil {
		return Response{}, err
	}
	result := func(r Response) (Response, error) { return r, r.Err }
	select {
	case r := <-ch:
		return result(r)
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-e.dead:
		// The response may have raced the shutdown in.
		select {
		case r := <-ch:
			return result(r)
		default:
		}
		if e.runErr != nil {
			return Response{}, e.runErr
		}
		return Response{}, ErrClosed
	}
}

// validateRequest checks a request against the served architecture before
// it is admitted, so batch assembly can never fail.
func (e *Engine) validateRequest(req *Request) error {
	a := e.arch
	if req == nil || req.Input == nil {
		return fmt.Errorf("serve: request has no input")
	}
	if len(req.Input.Shape) != 3 || req.Input.Shape[1] < 1 || req.Input.Shape[2] < 1 {
		return fmt.Errorf("serve: input must be [c,h,w], got %v", req.Input.Shape)
	}
	c := req.Input.Shape[0]
	if req.Channels == nil {
		if c != a.Channels {
			return fmt.Errorf("serve: input has %d channels, model wants %d (name a subset via Channels)", c, a.Channels)
		}
		return nil
	}
	if len(req.Channels) != c {
		return fmt.Errorf("serve: Channels lists %d entries for %d input rows", len(req.Channels), c)
	}
	prev := -1
	for _, ch := range req.Channels {
		if ch <= prev || ch >= a.Channels {
			return fmt.Errorf("serve: channel indices must be strictly increasing in [0,%d), got %v", a.Channels, req.Channels)
		}
		prev = ch
	}
	return nil
}

// batchLoop is the dynamic micro-batcher: it blocks for the first request,
// then accumulates until the batch is full or the oldest request has waited
// MaxWait, then hands the assembled batch to the replicas.
func (e *Engine) batchLoop() {
	defer close(e.batcherDone)
	defer close(e.work)
	for {
		var first *job
		select {
		case first = <-e.queue:
		case <-e.quit:
			e.drainQueue()
			return
		case <-e.failed:
			e.drainQueue()
			return
		}
		batch := e.collect(first)
		select {
		case <-e.quit:
			e.failJobs(batch)
			e.drainQueue()
			return
		case <-e.failed:
			e.failJobs(batch)
			e.drainQueue()
			return
		default:
		}
		bj := e.assemble(batch)
		select {
		case e.work <- bj:
		case <-e.failed:
			e.failJobs(batch)
			e.drainQueue()
			return
		}
	}
}

// collect accumulates up to MaxBatch jobs behind first. A full batch
// flushes immediately; a partial batch flushes early the moment the queue
// is empty while dispatch capacity is free (waiting for stragglers would
// idle a replica — the batcher must never trade capacity for batch size),
// and otherwise at the MaxWait deadline, which bounds the extra wait a
// request can absorb when every replica is busy anyway.
func (e *Engine) collect(first *job) []*job {
	batch := []*job{first}
	if e.cfg.MaxBatch == 1 {
		return batch
	}
	// The deadline is counted from the oldest request's enqueue, not from
	// dequeue: time the request already spent queued behind busy replicas
	// counts against its batching wait.
	timer := time.NewTimer(time.Until(first.enq.Add(e.cfg.MaxWait)))
	defer timer.Stop()
	for len(batch) < e.cfg.MaxBatch {
		select {
		case j := <-e.queue:
			batch = append(batch, j)
			continue
		default:
		}
		// Queue momentarily empty: flush now if a dispatch slot is free.
		if len(e.work) < cap(e.work) {
			return batch
		}
		select {
		case j := <-e.queue:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-e.quit:
			return batch
		case <-e.failed:
			return batch
		}
	}
	return batch
}

// assemble builds the [B, C, H, W] batch tensor: every input regridded to
// the model grid and scattered onto its channel rows (partial channel sets
// leave the others zero — the normalized-data mean). The tensor comes from
// the process-wide pool and is returned to it by complete (or by the
// shutdown drain), so steady-state batch assembly allocates nothing.
//
// dchag:hotpath — the serve dispatch loop runs this once per micro-batch.
func (e *Engine) assemble(jobs []*job) *batchJob {
	a := e.arch
	hw := a.ImgH * a.ImgW
	x := tensor.DefaultPool.GetTensor(len(jobs), a.Channels, a.ImgH, a.ImgW)
	x.Zero() // pooled buffers come back dirty; unlisted channels must read 0
	for i, j := range jobs {
		in := j.req.Input
		if in.Shape[1] != a.ImgH || in.Shape[2] != a.ImgW {
			in = data.RegridBatch(in, a.ImgH, a.ImgW)
		}
		for r := 0; r < in.Shape[0]; r++ {
			ch := r
			if j.req.Channels != nil {
				ch = j.req.Channels[r]
			}
			copy(x.Data[(i*a.Channels+ch)*hw:(i*a.Channels+ch+1)*hw], in.Data[r*hw:(r+1)*hw])
		}
	}
	return &batchJob{jobs: jobs, x: x, formed: time.Now()}
}

// takeWork non-blockingly receives one stranded micro-batch from the work
// channel (shutdown path; the channel may or may not be closed yet).
func (e *Engine) takeWork() (*batchJob, bool) {
	select {
	case bj, ok := <-e.work:
		return bj, ok && bj != nil
	default:
		return nil, false
	}
}

// drainQueue fails every job still waiting in the queue (shutdown path).
func (e *Engine) drainQueue() {
	for {
		select {
		case j := <-e.queue:
			e.failJob(j)
		default:
			return
		}
	}
}

func (e *Engine) failJobs(jobs []*job) {
	for _, j := range jobs {
		e.failJob(j)
	}
}

func (e *Engine) failJob(j *job) {
	e.metrics.noteFailed()
	j.done <- Response{ID: j.req.ID, Err: ErrClosed}
}

// worker is one mesh rank's serving loop. Rank tp=0 of each TP group is the
// replica leader: it pulls assembled batches from the shared work channel,
// broadcasts them over its group, and answers once the group's forward
// completes. Every rank runs the no-grad forward on its channel shard; for
// D-CHAG stages the in-forward AllGather is the only communication, exactly
// as in training.
func (e *Engine) worker(rank int, m *dist.Mesh, ready chan<- error) (err error) {
	// inflight is the micro-batch this leader has pulled but not yet
	// answered; if the worker dies holding one (its own panic, or an abort
	// cascade from another rank), the exit path fails it so its clients
	// get ErrClosed instead of silence.
	var inflight *batchJob
	defer func() {
		if rec := recover(); rec != nil {
			err = comm.RankPanicError("serve", rank, rec)
		}
		if err != nil {
			e.fail()
		}
		if inflight != nil {
			e.failJobs(inflight.jobs)
		}
	}()
	tpc := m.TPComm(rank)
	mdl, err := e.src.Build(tpc)
	ready <- err
	if err != nil {
		return err
	}
	if e.cfg.DType != tensor.F64 {
		// Serving weights are frozen after restore, so the one-time f32
		// panel prepack stays valid for the engine's lifetime.
		mdl.SetInferDType(e.cfg.DType)
	}

	if tpc.Size() == 1 {
		// Single-rank replica: no group coordination needed.
		for {
			select {
			case bj, ok := <-e.work:
				if !ok {
					return nil
				}
				inflight = bj
				e.complete(bj, mdl.Infer(bj.x, nil))
				inflight = nil
			case <-e.failed:
				return nil
			}
		}
	}

	lo, hi := 0, e.arch.Channels
	if ds, ok := mdl.Stage.(*model.DCHAGStage); ok {
		lo, hi = ds.ChannelBounds()
	}
	lead := m.Spec.CoordOf(rank).TP == 0
	stop := tensor.FromSlice([]float64{0}, 1)
	cont := tensor.FromSlice([]float64{1}, 1)
	var shard *tensor.Tensor // per-worker channel-slice scratch
	for {
		var bj *batchJob
		var ctrl *tensor.Tensor
		if lead {
			select {
			case b, ok := <-e.work:
				if !ok {
					// Deliberately leader-only: the followers' matching
					// collective is the control Broadcast they are already
					// blocked in below; the stop sentinel pairs with it.
					//lint:ignore collectivesym pairs with the followers' control Broadcast in their loop head
					tpc.Broadcast(stop, 0)
					return nil
				}
				bj = b
				inflight = bj
				ctrl = cont
			case <-e.failed:
				// The failing rank's return aborts every mesh group, which
				// releases this replica's peers from their pending
				// Broadcast; no farewell needed (or possible).
				return nil
			}
		}
		if tpc.Broadcast(ctrl, 0).Data[0] == 0 {
			return nil
		}
		var x *tensor.Tensor
		if lead {
			x = bj.x
		}
		x = tpc.Broadcast(x, 0)
		in := x
		if lo != 0 || hi != e.arch.Channels {
			shard = tensor.EnsureShape(shard, x.Shape[0], hi-lo, x.Shape[2], x.Shape[3])
			in = tensor.SliceAxisInto(shard, x, 1, lo, hi)
		}
		pred := mdl.Infer(in, nil)
		if lead {
			e.complete(bj, pred)
			inflight = nil
		}
	}
}

// complete unpatchifies a replica's prediction and fans the per-request
// responses back out.
func (e *Engine) complete(bj *batchJob, pred *tensor.Tensor) {
	a := e.arch
	imgs := model.Unpatchify(pred, a.Channels, a.ImgH, a.ImgW, a.Patch)
	tensor.DefaultPool.PutTensor(bj.x) // the batch tensor is consumed
	bj.x = nil
	now := time.Now()
	b := len(bj.jobs)
	e.metrics.noteBatch(b)
	for i, j := range bj.jobs {
		out := tensor.SliceAxis(imgs, 0, i, i+1).Reshape(a.Channels, a.ImgH, a.ImgW)
		resp := Response{
			ID:        j.req.ID,
			Output:    out,
			BatchSize: b,
			Queued:    bj.formed.Sub(j.enq),
			Total:     now.Sub(j.enq),
		}
		e.metrics.observe(resp)
		j.done <- resp
	}
}
