package serve

import (
	"math"
	"sync"
	"time"

	"repro/internal/tensor"
)

// The response cache exploits the property the whole substrate is built
// around: the no-grad forward is bitwise deterministic, so a response is
// fully determined by (model instance, dtype, input grid, channel set,
// input bytes) and therefore content-addressable. The cache sits in front
// of the micro-batcher — a hit returns without ever queuing, a miss
// registers an in-flight entry so identical concurrent requests (a
// thundering herd on one hot input) coalesce onto a single forward.
//
// Shape: a fixed array of independently locked shards, each a
// map + intrusive doubly-linked LRU list bounded by bytes. The lookup
// path (fingerprint + shard get) is allocation-free and on the
// dchag:hotpath; allocation (response channels, flight registration)
// happens only on the miss path.

// fingerprint is a 128-bit content address for a request against one
// model instance. Two independent FNV-1a-style lanes with different odd
// multipliers keep the lanes decorrelated (two FNV runs differing only in
// offset basis collide together, so the second lane uses a distinct
// multiplier, not just a distinct seed).
type fingerprint struct {
	hi, lo uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// Golden-ratio odd multiplier for the second lane (splitmix64's
	// increment constant) — coprime to 2^64 and unrelated to the FNV prime.
	goldenMult64 = 0x9E3779B97F4A7C15
	goldenSeed64 = 0x8E5D5D5D27D3C713
)

// digest accumulates the two fingerprint lanes 64 bits at a time.
type digest struct {
	hi, lo uint64
}

func (d *digest) word(v uint64) {
	for i := 0; i < 8; i++ {
		b := v & 0xff
		d.lo = (d.lo ^ b) * fnvPrime64
		d.hi = (d.hi ^ b) * goldenMult64
		v >>= 8
	}
}

// fingerprintOf addresses req's response content: the serving instance
// (checkpoint identity), forward dtype, input grid (the pre-regrid shape —
// a regridded request is a different input), the explicit channel set, and
// every input value bitwise. Called once per Submit when the cache is on.
//
// dchag:hotpath — runs per request in front of the queue; must not allocate.
func fingerprintOf(instID int64, dt tensor.DType, req *Request) fingerprint {
	d := digest{hi: goldenSeed64, lo: fnvOffset64}
	d.word(uint64(instID))
	d.word(uint64(dt))
	d.word(uint64(len(req.Input.Shape)))
	for _, s := range req.Input.Shape {
		d.word(uint64(s))
	}
	// A nil channel set (full input) hashes as length 0, distinct from any
	// explicit subset: lengths and indices both feed the digest, so a
	// partial-channel request can never alias the full-channel one.
	d.word(uint64(len(req.Channels)))
	for _, c := range req.Channels {
		d.word(uint64(c))
	}
	for _, v := range req.Input.Data {
		d.word(math.Float64bits(v))
	}
	return fingerprint{hi: d.hi, lo: d.lo}
}

// waiter is one coalesced request parked on an in-flight forward.
type waiter struct {
	id  string
	enq time.Time
	ch  chan Response
}

// flight is one in-progress forward for a fingerprint; identical requests
// arriving while it runs join waiters instead of queuing their own.
type flight struct {
	waiters []waiter
}

// centry is one cached response, a node in its shard's intrusive LRU list.
type centry struct {
	key        fingerprint
	inst       int64
	out        *tensor.Tensor
	bytes      int64
	prev, next *centry
}

const cacheShardCount = 8 // power of two: shard selection is a mask

// cache is the sharded, byte-bounded response cache.
type cache struct {
	shards [cacheShardCount]cacheShard
}

// cacheShard is one independently locked slice of the cache.
type cacheShard struct {
	mu       sync.Mutex
	capBytes int64
	entries  map[fingerprint]*centry // guarded by mu
	flights  map[fingerprint]*flight // guarded by mu
	bytes    int64                   // guarded by mu
	head     *centry                 // guarded by mu — most recently used
	tail     *centry                 // guarded by mu — eviction candidate
}

// newCache builds a cache bounded by capBytes across all shards.
func newCache(capBytes int64) *cache {
	c := &cache{}
	per := capBytes / cacheShardCount
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.capBytes = per
		s.entries = make(map[fingerprint]*centry)
		s.flights = make(map[fingerprint]*flight)
		s.mu.Unlock()
	}
	return c
}

func (c *cache) shard(key fingerprint) *cacheShard {
	return &c.shards[key.lo&(cacheShardCount-1)]
}

// get returns the cached response tensor for key, or nil. A hit is
// refreshed to the front of its shard's LRU list. The returned tensor is
// shared and must be treated as immutable by callers (responses already
// are: clients receive output tensors they do not own).
//
// dchag:hotpath — the cache hit path; map read + pointer splice only.
func (c *cache) get(key fingerprint) *tensor.Tensor {
	s := c.shard(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		s.mu.Unlock()
		return nil
	}
	s.moveToFrontLocked(e)
	out := e.out
	s.mu.Unlock()
	return out
}

// joinOrOwn resolves a miss: if a flight for key is already in progress the
// request joins it (returns the channel its coalesced response will arrive
// on); otherwise the caller becomes the flight owner (returns nil) and must
// eventually fill or abort. The re-check of entries closes the race where
// the flight completed between the caller's get miss and this call; the
// symmetric race (entry filled after a fresh flight registers) merely runs
// one redundant forward whose fill overwrites bitwise-identical bytes.
func (c *cache) joinOrOwn(key fingerprint, id string, enq time.Time) (*tensor.Tensor, <-chan Response) {
	s := c.shard(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		s.moveToFrontLocked(e)
		out := e.out
		s.mu.Unlock()
		return out, nil
	}
	if f := s.flights[key]; f != nil {
		ch := make(chan Response, 1)
		f.waiters = append(f.waiters, waiter{id: id, enq: enq, ch: ch})
		s.mu.Unlock()
		return nil, ch
	}
	s.flights[key] = &flight{}
	s.mu.Unlock()
	return nil, nil
}

// fill completes key's flight with the computed response, inserts it into
// the cache (evicting from the LRU tail to fit), and returns the coalesced
// waiters for the caller to fan the response out to.
func (c *cache) fill(key fingerprint, inst int64, out *tensor.Tensor) []waiter {
	bytes := int64(len(out.Data)) * 8
	s := c.shard(key)
	s.mu.Lock()
	var ws []waiter
	if f := s.flights[key]; f != nil {
		ws = f.waiters
		delete(s.flights, key)
	}
	if e := s.entries[key]; e != nil {
		// A redundant forward raced an existing fill; the bytes are
		// identical by determinism, keep the incumbent.
		s.moveToFrontLocked(e)
		s.mu.Unlock()
		return ws
	}
	if bytes <= s.capBytes {
		for s.bytes+bytes > s.capBytes && s.tail != nil {
			s.evictTailLocked()
		}
		e := &centry{key: key, inst: inst, out: out, bytes: bytes}
		s.entries[key] = e
		s.pushFrontLocked(e)
		s.bytes += bytes
	}
	s.mu.Unlock()
	return ws
}

// abort abandons key's flight (owner rejected or failed before a fill) and
// returns its waiters so the caller can fail them the same way.
func (c *cache) abort(key fingerprint) []waiter {
	s := c.shard(key)
	s.mu.Lock()
	var ws []waiter
	if f := s.flights[key]; f != nil {
		ws = f.waiters
		delete(s.flights, key)
	}
	s.mu.Unlock()
	return ws
}

// invalidate drops every cached entry belonging to the given model
// instance — called after a hot swap has drained the old instance, so no
// late fill can repopulate it.
func (c *cache) invalidate(inst int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, e := range s.entries {
			if e.inst == inst {
				delete(s.entries, key)
				s.unlinkLocked(e)
				s.bytes -= e.bytes
			}
		}
		s.mu.Unlock()
	}
}

// len reports the number of cached entries (tests and stats).
func (c *cache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// LRU list splicing. All callers hold s.mu.

func (s *cacheShard) pushFrontLocked(e *centry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlinkLocked(e *centry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFrontLocked(e *centry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

func (s *cacheShard) evictTailLocked() {
	e := s.tail
	delete(s.entries, e.key)
	s.unlinkLocked(e)
	s.bytes -= e.bytes
}
