// Package serve is the asynchronous, batched inference engine over the
// device mesh — the request-facing tier the ROADMAP's north star calls for,
// decoupled from the sharded compute tier by a queue and a dynamic
// micro-batcher (the shape cross-cloud/hierarchical FL serving systems
// share: admission control in front, batching in the middle, sharded
// replicas behind).
//
// The pipeline, front to back:
//
//	Submit/Do ──▶ response cache ──▶ bounded queue ──▶ micro-batcher ──▶ work channel ──▶ host replicas
//	 (admission     (content hit:      (backpressure)    (flush on max       (one reader      (TP groups of
//	  control:       answer now;                          batch or max        per replica      q ranks; rank 0
//	  ErrQueueFull)  miss: coalesce)                      wait deadline)      leader)          answers)
//
// The compute tier is a Host: one dist.Mesh whose rank goroutines multiplex
// any number of loaded model instances, so several engines (multi-tenant
// routing, see Router) share the same mesh and a running engine hot-swaps
// to a newly committed checkpoint (Engine.Swap, AutoSwap) without dropping
// a request. The forward is bitwise deterministic and no-grad, which makes
// responses content-addressable: Config.CacheBytes enables a sharded LRU
// keyed by (instance, dtype, grid, channel set, input bytes) in front of
// the batcher.
//
// Requests carry a single [c, h, w] snapshot on any spatial grid and any
// subset of the model's channels: the batcher regrids each input to the
// model grid (data.RegridBatch, the same bilinear path the training
// loaders use) and scatters partial channel sets onto a zero canvas —
// zero is the per-channel mean under the training normalization, and
// filling the gap across channels is exactly what the D-CHAG aggregation
// stage learns to do.
//
// Each replica is one TP group of Config.Ranks rank goroutines pinned to a
// dist.Mesh (spec TP=Ranks, DP=Replicas): the group leader pulls an
// assembled batch, broadcasts it over the group, every rank runs the
// no-grad forward (model.FoundationModel.Infer — D-CHAG's AllGather is the
// only communication, exactly as in training), and the leader unpatchifies
// and fans responses back out. Models come from a Source: FromCheckpoint
// opens any dchag-ckpt/v1 directory read-only and reshards it to the
// serving topology (save at p ranks, serve at any q dividing the logical
// partition count, including q=1), FromArch builds fresh seeded weights
// for benchmarks.
package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Errors returned by the admission path.
var (
	// ErrQueueFull is the admission-control rejection: the bounded request
	// queue is at capacity. Clients should back off and retry.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed reports a Submit against a closed (or failed) engine.
	ErrClosed = errors.New("serve: engine closed")
)

// Request is one inference request: a single snapshot to run the forecast
// forward pass on.
type Request struct {
	// ID is echoed in the Response; the engine does not interpret it.
	ID string
	// Input is the snapshot [c, h, w]. Any spatial grid is accepted — the
	// batcher regrids to the model's ImgH x ImgW — and c is either the
	// model's full channel count (Channels nil) or len(Channels).
	Input *tensor.Tensor
	// Channels optionally names the global channel index of each Input row,
	// letting a client submit a partial channel set; unlisted channels are
	// zero-filled (the normalized-data mean). Indices must be in range and
	// strictly increasing.
	Channels []int
}

// Response is the answer to one Request.
type Response struct {
	// ID echoes the request.
	ID string
	// Output is the model's predicted image [C, H, W] on the model grid.
	Output *tensor.Tensor
	// BatchSize is the size of the micro-batch the request was served in.
	BatchSize int
	// Queued is the time spent waiting for the micro-batch to form; Total
	// is enqueue-to-response latency (queueing + batching + forward).
	Queued, Total time.Duration
	// Cached marks a response answered from the content-addressable cache —
	// either an immediate hit (BatchSize 0, Queued 0) or a request that
	// coalesced onto an identical in-flight forward (BatchSize of that
	// forward's micro-batch). Cached outputs are shared tensors: treat them
	// as read-only, exactly like any other Response.Output.
	Cached bool
	// Err is set when the engine shut down before the request was served.
	Err error
}

// Config sizes the serving engine.
type Config struct {
	// Ranks is the TP (D-CHAG channel-sharding) width of each replica; it
	// must divide the model's logical partition count. 1 serves the serial
	// equivalent model.
	Ranks int
	// Replicas is the number of independent model replicas consuming
	// batches; the mesh world is Ranks*Replicas.
	Replicas int
	// MaxBatch caps the micro-batch size; a full batch flushes immediately.
	// 1 disables batching.
	MaxBatch int
	// MaxWait is the batching deadline: a partial batch flushes once its
	// oldest request has waited this long.
	MaxWait time.Duration
	// QueueDepth bounds the request queue (admission control); Submit
	// returns ErrQueueFull beyond it. 0 defaults to 4*MaxBatch*Replicas.
	QueueDepth int
	// DType selects the arithmetic of the replicas' no-grad forward. The
	// zero value (tensor.F64) serves bitwise training-equivalent outputs;
	// tensor.F32 runs the matrix products in float32 over prepacked weight
	// panels — faster, with outputs within the tolerance contract documented
	// in DESIGN.md ("Compute substrate").
	DType tensor.DType
	// CacheBytes bounds the content-addressable response cache (0 disables
	// it, the default). The forward is bitwise deterministic, so a response
	// is fully determined by (model instance, dtype, input grid, channel
	// set, input bytes): a repeated request is answered from the cache
	// without queuing, and identical concurrent requests coalesce onto a
	// single forward. Eviction is sharded LRU at this byte bound.
	CacheBytes int64
	// Trace, when non-nil, records the full request lifecycle: mesh
	// collectives and per-batch forwards on rows [0, Ranks*Replicas) (one
	// row per world rank) and the engine front end — enqueue, batch
	// formation, dispatch, respond, cache fill — on the tracer's last row.
	// Size it with obs.NewTracer(Ranks*Replicas+1, capacity). Start builds
	// the traced host from it; engines attached to a shared host (StartOn,
	// Router) inherit that host's tracer instead. Nil disables tracing at
	// zero cost on the hot paths.
	Trace *obs.Tracer
}

// withDefaults normalizes zero fields.
func (c Config) withDefaults() Config {
	if c.Ranks < 1 {
		c.Ranks = 1
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 10 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxBatch * c.Replicas
	}
	return c
}

// validate rejects nonsensical configurations before any goroutine starts.
func (c Config) validate() error {
	if c.Ranks < 1 || c.Replicas < 1 || c.MaxBatch < 1 || c.QueueDepth < 1 || c.CacheBytes < 0 {
		return fmt.Errorf("serve: invalid config %+v", c)
	}
	return nil
}
