package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/promtext"
)

// scrape fetches url and parses it as Prometheus text format, failing
// the test on anything a strict scraper would reject.
func scrape(t *testing.T, url string) promtext.Families {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics page does not parse: %v", err)
	}
	return fams
}

// TestEngineMetricsEndpoint round-trips GET /metrics through the
// text-format parser and pins the exported series against the engine's
// own snapshot.
func TestEngineMetricsEndpoint(t *testing.T) {
	a := testArch()
	e := startTest(t, Config{
		Ranks: 1, Replicas: 1, MaxBatch: 2, MaxWait: time.Millisecond,
		CacheBytes: 1 << 20,
	}, FromArch(a))
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	x := testInput(a, 31, a.ImgH, a.ImgW)
	if _, err := e.Do(context.Background(), &Request{Input: x.Clone()}); err != nil {
		t.Fatal(err)
	}
	// Same content again: a cache hit.
	if _, err := e.Do(context.Background(), &Request{Input: x.Clone()}); err != nil {
		t.Fatal(err)
	}

	fams := scrape(t, srv.URL+"/metrics")
	s := e.Metrics().Snapshot()
	for name, want := range map[string]float64{
		"dchag_requests_completed_total": float64(s.Completed),
		"dchag_requests_rejected_total":  float64(s.Rejected),
		"dchag_batches_total":            float64(s.Batches),
		"dchag_cache_hits_total":         float64(s.CacheHits),
		"dchag_cache_misses_total":       float64(s.CacheMisses),
		"dchag_swaps_total":              float64(s.Swaps),
	} {
		got, ok := fams.Value(name, nil)
		if !ok {
			t.Fatalf("series %s missing from /metrics", name)
		}
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if s.Completed < 1 || s.CacheHits < 1 {
		t.Fatalf("test did not exercise both a forward and a hit: %+v", s)
	}
	if _, ok := fams.Value("dchag_total_latency_ms", map[string]string{"quantile": "0.99"}); !ok {
		t.Fatal("latency quantile series missing")
	}
	bi, ok := fams["dchag_build_info"]
	if !ok || len(bi.Samples) != 1 || bi.Samples[0].Value != 1 {
		t.Fatalf("dchag_build_info missing or wrong: %+v", bi)
	}
	if bi.Samples[0].Labels["go_version"] == "" {
		t.Fatal("build info has no go_version label")
	}
	if bi.Type != "gauge" {
		t.Fatalf("dchag_build_info type %q, want gauge", bi.Type)
	}
}

// TestRouterMetricsEndpoint checks the multi-model, multi-tenant page:
// per-model series carry model labels, tenant counters tenant labels,
// and the whole page survives the strict parser.
func TestRouterMetricsEndpoint(t *testing.T) {
	leakcheck.Check(t)
	a := testArch()
	r, err := NewRouter(RouterConfig{Ranks: 1, Replicas: 1, TenantSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("router close: %v", err)
		}
	}()
	for _, name := range []string{"alpha", "beta"} {
		if _, err := r.AddModel(name, Config{MaxBatch: 2, MaxWait: time.Millisecond}, FromArch(a)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	x := testInput(a, 77, a.ImgH, a.ImgW)
	if _, err := r.Do(context.Background(), "acme", "alpha", &Request{Input: x.Clone()}); err != nil {
		t.Fatal(err)
	}

	fams := scrape(t, srv.URL+"/metrics")
	if v, ok := fams.Value("dchag_requests_completed_total", map[string]string{"model": "alpha"}); !ok || v != 1 {
		t.Fatalf("alpha completed = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := fams.Value("dchag_requests_completed_total", map[string]string{"model": "beta"}); !ok || v != 0 {
		t.Fatalf("beta completed = %v (ok=%v), want 0", v, ok)
	}
	if v, ok := fams.Value("dchag_tenant_admitted_total", map[string]string{"tenant": "acme"}); !ok || v != 1 {
		t.Fatalf("tenant admitted = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := fams.Value("dchag_tenant_slots", map[string]string{"tenant": "acme"}); !ok || v != 4 {
		t.Fatalf("tenant slots = %v (ok=%v), want 4", v, ok)
	}
}

// TestServeTraceLifecycle runs a traced engine end to end and checks the
// request lifecycle appears on the tracer: front-end events on the last
// row, an infer span on a worker row, and a valid Chrome export.
func TestServeTraceLifecycle(t *testing.T) {
	a := testArch()
	tr := obs.NewTracer(2*1+1, 256) // ranks*replicas + engine row
	e := startTest(t, Config{
		Ranks: 2, Replicas: 1, MaxBatch: 2, MaxWait: time.Millisecond,
		CacheBytes: 1 << 20, Trace: tr,
	}, FromArch(a))

	x := testInput(a, 91, a.ImgH, a.ImgW)
	for i := 0; i < 2; i++ { // second submit hits the cache
		if _, err := e.Do(context.Background(), &Request{Input: x.Clone()}); err != nil {
			t.Fatal(err)
		}
	}

	names := func(row int) map[string]int {
		out := map[string]int{}
		for _, ev := range tr.Events(row) {
			out[ev.Name]++
		}
		return out
	}
	front := names(tr.Rows() - 1)
	for _, want := range []string{"enqueue", "batch-collect", "batch-assemble", "dispatch-wait", "respond", "cache-fill", "cache-hit"} {
		if front[want] == 0 {
			t.Errorf("front-end row missing %q event; have %v", want, front)
		}
	}
	if names(0)["infer"] == 0 {
		t.Errorf("worker row 0 has no infer span; have %v", names(0))
	}
	// The 2-rank TP group broadcasts control and batch: comm spans too.
	if names(1)["broadcast"] == 0 {
		t.Errorf("worker row 1 has no broadcast span; have %v", names(1))
	}
}
