package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/tensor"
)

// maxRequestBytes bounds a /v1/predict body; far above any real snapshot at
// this repository's model scales.
const maxRequestBytes = 64 << 20

// PredictRequest is the JSON body of POST /v1/predict.
type PredictRequest struct {
	// ID is echoed in the response.
	ID string `json:"id,omitempty"`
	// Shape is [c, h, w]; Values holds the row-major field values.
	Shape  []int     `json:"shape"`
	Values []float64 `json:"values"`
	// Channels optionally names the global channel index of each input row
	// (partial channel sets; see Request.Channels).
	Channels []int `json:"channels,omitempty"`
}

// PredictResponse is the JSON answer of POST /v1/predict.
type PredictResponse struct {
	ID string `json:"id,omitempty"`
	// Shape is [C, H, W] on the model grid; Values the predicted field.
	Shape  []int     `json:"shape"`
	Values []float64 `json:"values"`
	// BatchSize is the micro-batch the request was served in; QueuedMs and
	// TotalMs the server-side latencies.
	BatchSize int     `json:"batch_size"`
	QueuedMs  float64 `json:"queued_ms"`
	TotalMs   float64 `json:"total_ms"`
	// Cached marks a response answered from the content-addressable cache
	// (Response.Cached).
	Cached bool `json:"cached,omitempty"`
}

// Handler returns the engine's HTTP surface:
//
//	POST /v1/predict  — one inference request (PredictRequest/PredictResponse)
//	GET  /v1/stats    — metrics Snapshot as JSON
//	GET  /metrics     — the same snapshot in Prometheus text format, plus
//	                    cache, swap, and build-info series
//	GET  /healthz     — 200 while the engine is live, 503 after shutdown
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", e.handlePredict)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.metrics.Snapshot())
	})
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Err() != nil || e.closed() {
			http.Error(w, "engine stopped", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// closed reports whether Close has begun.
func (e *Engine) closed() bool {
	select {
	case <-e.quit:
		return true
	case <-e.dead:
		return true
	default:
		return false
	}
}

func (e *Engine) handlePredict(w http.ResponseWriter, r *http.Request) {
	servePredict(w, r, e.Do)
}

// servePredict decodes one PredictRequest, runs it through do (an engine's
// Do, or a router's tenant-scoped Do), and writes the answer — shared by
// the single-engine and router HTTP surfaces.
func servePredict(w http.ResponseWriter, r *http.Request, do func(context.Context, *Request) (Response, error)) {
	var preq PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&preq); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return
	}
	if len(preq.Shape) != 3 {
		http.Error(w, fmt.Sprintf("shape must be [c,h,w], got %v", preq.Shape), http.StatusBadRequest)
		return
	}
	n := 1
	for _, d := range preq.Shape {
		if d < 1 {
			http.Error(w, fmt.Sprintf("shape must be positive, got %v", preq.Shape), http.StatusBadRequest)
			return
		}
		n *= d
	}
	if n != len(preq.Values) {
		http.Error(w, fmt.Sprintf("shape %v wants %d values, got %d", preq.Shape, n, len(preq.Values)), http.StatusBadRequest)
		return
	}
	req := &Request{
		ID:       preq.ID,
		Input:    tensor.FromSlice(preq.Values, preq.Shape...),
		Channels: preq.Channels,
	}
	resp, err := do(r.Context(), req)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrTenantBusy):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrUnknownModel):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		http.Error(w, err.Error(), http.StatusRequestTimeout)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		ID:        resp.ID,
		Shape:     resp.Output.Shape,
		Values:    resp.Output.Data,
		BatchSize: resp.BatchSize,
		QueuedMs:  float64(resp.Queued) / float64(time.Millisecond),
		TotalMs:   float64(resp.Total) / float64(time.Millisecond),
		Cached:    resp.Cached,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
