package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/tensor"
)

// cacheTestConfig is a cached single-replica engine sized so nothing
// evicts unless a test wants it to.
func cacheTestConfig() Config {
	return Config{
		Ranks: 2, Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond,
		QueueDepth: 64, CacheBytes: 1 << 20,
	}
}

// TestCacheHitBitwiseIdentical pins the cache's core claim: because the
// forward is deterministic, a hit is indistinguishable from a cold forward
// — bitwise — under both serving dtypes.
func TestCacheHitBitwiseIdentical(t *testing.T) {
	a := testArch()
	for _, dt := range []tensor.DType{tensor.F64, tensor.F32} {
		t.Run(dt.String(), func(t *testing.T) {
			cfg := cacheTestConfig()
			cfg.DType = dt
			e := startTest(t, cfg, FromArch(a))
			x := testInput(a, 51, a.ImgH, a.ImgW)

			cold, err := e.Do(context.Background(), &Request{ID: "cold", Input: x})
			if err != nil {
				t.Fatal(err)
			}
			if cold.Cached {
				t.Fatal("first request reported Cached")
			}
			if dt == tensor.F64 {
				if d := tensor.MaxAbsDiff(cold.Output, reference(t, a, x)); d != 0 {
					t.Fatalf("cold response differs from direct inference by %g", d)
				}
			}
			// An identical resubmission (fresh tensor, same bytes) must hit.
			hot, err := e.Do(context.Background(), &Request{ID: "hot", Input: x.Clone()})
			if err != nil {
				t.Fatal(err)
			}
			if !hot.Cached {
				t.Fatal("identical resubmission was not served from cache")
			}
			if d := tensor.MaxAbsDiff(hot.Output, cold.Output); d != 0 {
				t.Fatalf("cache hit differs from cold forward by %g", d)
			}
			snap := e.Metrics().Snapshot()
			if snap.CacheHits != 1 || snap.CacheMisses != 1 || snap.Completed != 1 {
				t.Fatalf("want 1 hit / 1 miss / 1 forward, got %+v", snap)
			}
			if snap.HitP99Ms <= 0 {
				t.Fatalf("hit latency not sampled: %+v", snap)
			}
		})
	}
}

// TestCacheFingerprintDistinct pins the content address: inputs that
// assemble to the same canvas but arrive differently (pre-regridded vs
// coarse grid, full canvas vs partial channel set), different instances,
// and different dtypes must all fingerprint apart — correctness never
// leans on the batcher's normalization.
func TestCacheFingerprintDistinct(t *testing.T) {
	a := testArch()
	base := &Request{Input: testInput(a, 52, a.ImgH, a.ImgW)}
	fp := func(inst int64, dt tensor.DType, r *Request) fingerprint {
		return fingerprintOf(inst, dt, r)
	}
	want := fp(1, tensor.F64, base)

	coarse := &Request{Input: data.RegridBatch(base.Input, 2*a.ImgH, 2*a.ImgW)}
	partial := &Request{
		Input:    tensor.SliceAxis(base.Input, 0, 0, 3),
		Channels: []int{0, 1, 2},
	}
	fullAsList := &Request{Input: base.Input, Channels: seqInts(a.Channels)}
	distinct := map[string]fingerprint{
		"regridded input":      fp(1, tensor.F64, coarse),
		"partial channel set":  fp(1, tensor.F64, partial),
		"explicit channel set": fp(1, tensor.F64, fullAsList),
		"other instance":       fp(2, tensor.F64, base),
		"other dtype":          fp(1, tensor.F32, base),
	}
	for name, got := range distinct {
		if got == want {
			t.Errorf("%s fingerprints identically to the base request", name)
		}
	}
	// And the address is stable: same content, fresh tensor, same prints.
	if again := fp(1, tensor.F64, &Request{Input: base.Input.Clone()}); again != want {
		t.Error("identical content fingerprinted differently")
	}
}

func seqInts(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// TestCacheCoalescing pins the thundering-herd behavior: identical
// concurrent requests cost exactly one forward — one owner, the rest
// either coalesce onto its flight or hit the filled entry.
func TestCacheCoalescing(t *testing.T) {
	a := testArch()
	const herd = 16
	e := startTest(t, cacheTestConfig(), FromArch(a))
	x := testInput(a, 53, a.ImgH, a.ImgW)

	var wg sync.WaitGroup
	resps := make([]Response, herd)
	errs := make([]error, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = e.Do(context.Background(), &Request{ID: fmt.Sprint(i), Input: x})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if d := tensor.MaxAbsDiff(resps[i].Output, resps[0].Output); d != 0 {
			t.Fatalf("request %d answer differs from request 0 by %g", i, d)
		}
	}
	snap := e.Metrics().Snapshot()
	if snap.Completed != 1 || snap.CacheMisses != 1 {
		t.Fatalf("herd of %d cost %d forwards (%d misses), want exactly 1", herd, snap.Completed, snap.CacheMisses)
	}
	if snap.CacheHits+snap.CacheCoalesced != herd-1 {
		t.Fatalf("hits %d + coalesced %d != %d", snap.CacheHits, snap.CacheCoalesced, herd-1)
	}
}

// TestCacheEviction pins the byte bound and LRU order at the shard level,
// with fabricated fingerprints all landing on shard 0 so the arithmetic is
// exact: capacity holds three entries, the least recently used is evicted,
// and a get refreshes recency.
func TestCacheEviction(t *testing.T) {
	out := tensor.New(4) // 32 bytes per entry
	entry := int64(len(out.Data)) * 8
	c := newCache(cacheShardCount * 3 * entry) // 3 entries per shard
	key := func(i uint64) fingerprint {
		return fingerprint{hi: i, lo: i * cacheShardCount} // lo mod shards == 0
	}
	for i := uint64(1); i <= 3; i++ {
		c.fill(key(i), 1, out)
	}
	if c.len() != 3 {
		t.Fatalf("3 fills cached %d entries", c.len())
	}
	// Touch key 1 so key 2 is now least recently used.
	if c.get(key(1)) == nil {
		t.Fatal("key 1 missing before eviction")
	}
	c.fill(key(4), 1, out)
	if c.len() != 3 {
		t.Fatalf("over-capacity fill left %d entries, want 3", c.len())
	}
	if c.get(key(2)) != nil {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []uint64{1, 3, 4} {
		if c.get(key(i)) == nil {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	// An entry larger than a whole shard is never cached (and never evicts
	// the working set to make room for something that cannot fit anyway).
	huge := tensor.New(1000)
	c.fill(key(5), 1, huge)
	if c.len() != 3 || c.get(key(5)) != nil {
		t.Fatal("oversized entry was cached or displaced the working set")
	}
}

// TestCacheEvictionUnderLoad pins the engine-level bound: a stream of
// distinct requests through a tiny cache stays within CacheBytes.
func TestCacheEvictionUnderLoad(t *testing.T) {
	a := testArch()
	entry := int64(a.Channels*a.ImgH*a.ImgW) * 8
	cfg := cacheTestConfig()
	cfg.CacheBytes = cacheShardCount * 2 * entry // ~2 responses per shard
	e := startTest(t, cfg, FromArch(a))

	const distinct = 64
	for i := 0; i < distinct; i++ {
		if _, err := e.Do(context.Background(), &Request{Input: testInput(a, int64(100+i), a.ImgH, a.ImgW)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.cache.len(); int64(n)*entry > cfg.CacheBytes {
		t.Fatalf("%d cached entries x %d bytes exceed the %d-byte bound", n, entry, cfg.CacheBytes)
	}
	if n := e.cache.len(); n == 0 {
		t.Fatal("cache empty after 64 distinct requests")
	}
}
