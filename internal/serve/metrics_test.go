package serve

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestSnapshotEmpty pins the zero-state snapshot: every counter zero,
// every quantile zero (Quantile of an empty sample is 0 by contract),
// and no NaNs from the mean/throughput divisions.
func TestSnapshotEmpty(t *testing.T) {
	m := NewMetrics()
	s := m.Snapshot()
	if s.Completed != 0 || s.Rejected != 0 || s.Failed != 0 || s.Batches != 0 {
		t.Fatalf("empty snapshot has nonzero counters: %+v", s)
	}
	if s.MeanBatch != 0 {
		t.Fatalf("MeanBatch = %v on zero batches, want 0", s.MeanBatch)
	}
	for name, q := range map[string]float64{
		"QueuedP50": s.QueuedP50Ms, "QueuedP99": s.QueuedP99Ms,
		"TotalP50": s.TotalP50Ms, "TotalP95": s.TotalP95Ms, "TotalP99": s.TotalP99Ms,
		"HitP50": s.HitP50Ms, "HitP99": s.HitP99Ms,
	} {
		if q != 0 {
			t.Errorf("%s = %v on empty sample, want 0", name, q)
		}
	}
	if math.IsNaN(s.ThroughputRPS) || math.IsInf(s.ThroughputRPS, 0) {
		t.Fatalf("ThroughputRPS = %v, want finite", s.ThroughputRPS)
	}
}

// TestSnapshotSingleSample pins the degenerate one-observation case:
// every quantile of a single sample is that sample.
func TestSnapshotSingleSample(t *testing.T) {
	m := NewMetrics()
	m.observe(Response{Queued: 2 * time.Millisecond, Total: 5 * time.Millisecond})
	m.noteBatch(3)
	s := m.Snapshot()
	if s.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", s.Completed)
	}
	if s.QueuedP50Ms != 2 || s.QueuedP99Ms != 2 {
		t.Fatalf("queued quantiles = %v/%v, want 2/2", s.QueuedP50Ms, s.QueuedP99Ms)
	}
	if s.TotalP50Ms != 5 || s.TotalP95Ms != 5 || s.TotalP99Ms != 5 {
		t.Fatalf("total quantiles = %v/%v/%v, want 5/5/5", s.TotalP50Ms, s.TotalP95Ms, s.TotalP99Ms)
	}
	if s.MeanBatch != 3 {
		t.Fatalf("MeanBatch = %v, want 3", s.MeanBatch)
	}
}

// TestQuantileNearestRank pins the nearest-rank math on a known sample.
func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 6}, {0.99, 10}, {1, 10},
		{0.25, 3}, {0.95, 10},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

// TestMetricsSampleSaturation drives the sample buffers past
// maxLatencySamples: the counters must keep counting while the buffers
// stop growing, and the quantiles must come from the retained prefix.
func TestMetricsSampleSaturation(t *testing.T) {
	m := NewMetrics()
	const extra = 100
	resp := Response{Queued: time.Millisecond, Total: 2 * time.Millisecond}
	for i := 0; i < maxLatencySamples+extra; i++ {
		m.observe(resp)
	}
	for i := 0; i < maxLatencySamples+extra; i++ {
		m.noteHit(3 * time.Millisecond)
	}
	m.mu.Lock()
	nTotal, nHit := len(m.totalMs), len(m.hitMs)
	m.mu.Unlock()
	if nTotal != maxLatencySamples {
		t.Fatalf("totalMs grew to %d, want capped at %d", nTotal, maxLatencySamples)
	}
	if nHit != maxLatencySamples {
		t.Fatalf("hitMs grew to %d, want capped at %d", nHit, maxLatencySamples)
	}
	s := m.Snapshot()
	if want := uint64(maxLatencySamples + extra); s.Completed != want {
		t.Fatalf("Completed = %d, want %d (counters must not saturate)", s.Completed, want)
	}
	if want := uint64(maxLatencySamples + extra); s.CacheHits != want {
		t.Fatalf("CacheHits = %d, want %d", s.CacheHits, want)
	}
	if s.TotalP99Ms != 2 || s.HitP50Ms != 3 {
		t.Fatalf("quantiles after saturation = %v/%v, want 2/3", s.TotalP99Ms, s.HitP50Ms)
	}
}

// TestMetricsConcurrentRecord hammers every note path from many
// goroutines while snapshots run, then checks the exact counter totals.
// Run under -race this is also the data-race check for the lock scheme.
func TestMetricsConcurrentRecord(t *testing.T) {
	m := NewMetrics()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.observe(Response{Queued: time.Millisecond, Total: 2 * time.Millisecond})
				m.noteRejected()
				m.noteFailed()
				m.noteBatch(4)
				m.noteHit(time.Millisecond)
				m.noteMiss()
				m.noteCoalesced()
				m.noteSwap()
				m.noteDepth(i % 32)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := m.Snapshot()
	want := uint64(workers * per)
	if s.Completed != want || s.Rejected != want || s.Failed != want ||
		s.Batches != want || s.CacheHits != want || s.CacheMisses != want ||
		s.CacheCoalesced != want || s.Swaps != want {
		t.Fatalf("concurrent counters lost updates: %+v, want all %d", s, want)
	}
	if s.MeanBatch != 4 {
		t.Fatalf("MeanBatch = %v, want 4", s.MeanBatch)
	}
	if s.MaxQueueDepth != 31 {
		t.Fatalf("MaxQueueDepth = %d, want 31", s.MaxQueueDepth)
	}
}
