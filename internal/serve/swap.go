package serve

import (
	"fmt"

	"repro/internal/ckpt"
)

// Swap hot-swaps the served model: it loads src beside the current instance
// (requests keep flowing the whole time), atomically redirects routing to
// the new instance, waits for every micro-batch dispatched against the old
// one to be answered, unloads it, and invalidates its cache entries. No
// request is dropped: batches assembled before the swap run on the old
// model, batches after it on the new one.
//
// The new model must share the engine's request geometry (channels, grid,
// patch) — clients' requests are validated against it; partition layout and
// weights are free to differ, which is exactly the live checkpoint
// replication case.
func (e *Engine) Swap(src Source) error {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	if e.closedForSubmit() {
		return ErrClosed
	}
	na := src.Arch()
	a := e.arch
	if na.Channels != a.Channels || na.ImgH != a.ImgH || na.ImgW != a.ImgW || na.Patch != a.Patch {
		return fmt.Errorf("serve: swap geometry mismatch: engine serves %dx%dx%d patch %d, source is %dx%dx%d patch %d",
			a.Channels, a.ImgH, a.ImgW, a.Patch, na.Channels, na.ImgH, na.ImgW, na.Patch)
	}
	inst, err := e.host.load(src, e.cfg.DType)
	if err != nil {
		return err
	}
	e.instMu.Lock()
	old := e.inst
	e.inst = inst
	e.instMu.Unlock()
	// Drain: every batch that acquired old before the pointer swap has
	// bumped its in-flight count under the same lock, so Wait observes all
	// of them; teardown paths fail rather than strand them.
	old.wg.Wait()
	e.host.unload(old)
	if e.cache != nil {
		// After the drain no late fill can target the old instance, so the
		// invalidation is final; the new instance's fingerprints differ by
		// id and start cold.
		e.cache.invalidate(old.id)
	}
	e.metrics.noteSwap()
	return nil
}

// AutoSwap watches a checkpoint directory (ckpt.WatchLatest) and hot-swaps
// the engine to each newly committed checkpoint — live model replication
// into a running engine. Geometry-incompatible or unreadable checkpoints
// are skipped (the engine keeps serving its current model). The optional
// onSwap callback observes every attempt with its outcome; it runs on the
// watch goroutine, so it must not block. The returned stop function ends
// the watch and waits for the goroutine to exit.
func (e *Engine) AutoSwap(dir string, opt ckpt.WatchOptions, onSwap func(ckpt.Update, error)) (stop func()) {
	updates, stopWatch := ckpt.WatchLatest(dir, opt)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for u := range updates {
			// The update's Dir is itself a committed checkpoint directory
			// (the step dir under retention, dir itself under single-slot).
			src, err := FromCheckpoint(u.Dir)
			if err == nil {
				err = e.Swap(src)
			}
			if onSwap != nil {
				onSwap(u, err)
			}
		}
	}()
	return func() {
		stopWatch()
		<-done
	}
}
