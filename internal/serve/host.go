package serve

import (
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// instance is one loaded model multiplexed over the host's mesh: a
// world-rank-indexed set of model slices plus each rank's channel bounds.
// Instances are immutable after load; the WaitGroup tracks micro-batches
// dispatched against the instance so a hot swap can drain it exactly.
type instance struct {
	id    int64
	arch  model.Arch
	dtype tensor.DType
	// models, lo, hi are world-rank indexed and read-only after load.
	models []*model.FoundationModel
	lo, hi []int
	// wg counts dispatched-but-unanswered micro-batches: Add happens under
	// the owning engine's instMu read lock at assembly, Done exactly once
	// per batch on its complete-or-fail path, so Wait after the routing
	// swap observes a fully drained instance.
	wg sync.WaitGroup
}

// Host owns one dist.Mesh (TP=ranks per replica, DP=replicas) and its rank
// goroutines, and multiplexes any number of loaded model instances over
// them: micro-batches arrive on a shared work channel tagged with their
// instance, and the replica leader broadcasts the instance id alongside the
// batch so every rank of the TP group serves the same model. Engines are
// front-ends (queue, batcher, cache, metrics) attached to a Host; several
// engines sharing one Host is what multi-tenant routing and hot swap are
// built from.
type Host struct {
	ranks    int
	replicas int
	mesh     *dist.Mesh  // set before NewHost returns; read-only after
	trace    *obs.Tracer // nil when tracing is off; read-only after NewHost

	work   chan *batchJob
	quit   chan struct{} // closed by Close: leaders say farewell and exit
	failed chan struct{} // closed on the first worker failure
	dead   chan struct{} // closed when every rank goroutine has exited

	closeOnce sync.Once
	failOnce  sync.Once
	runErr    error // written before dead closes

	mu        sync.RWMutex
	instances map[int64]*instance // guarded by mu
	nextID    int64               // guarded by mu

	// senders tracks attached engine batchers so the teardown drain of the
	// work buffer runs only once no sender remains; sendMu serializes
	// attachment against the sendersClosed latch (a bare WaitGroup would
	// race Add against Wait).
	sendMu        sync.Mutex
	sendersClosed bool // guarded by sendMu
	senders       sync.WaitGroup
}

// NewHost builds the mesh and starts its rank goroutines. The world is
// ranks*replicas; each replica is one TP group whose leader pulls from the
// shared work channel. Close tears the mesh down.
func NewHost(ranks, replicas int) (*Host, error) {
	return NewHostTraced(ranks, replicas, nil)
}

// NewHostTraced is NewHost with observability: when tr is non-nil every
// mesh communicator gets a comm observer recording collective spans onto
// the world rank's tracer row, and the workers record per-batch forward
// spans on the same rows. Engines attached to the host record the
// front-end lifecycle on the tracer's last row (see Config.Trace), so
// size the tracer with rows = ranks*replicas + 1.
func NewHostTraced(ranks, replicas int, tr *obs.Tracer) (*Host, error) {
	if ranks < 1 || replicas < 1 {
		return nil, fmt.Errorf("serve: host needs ranks >= 1 and replicas >= 1, got %d x %d", ranks, replicas)
	}
	h := &Host{
		ranks:     ranks,
		replicas:  replicas,
		trace:     tr,
		work:      make(chan *batchJob, replicas),
		quit:      make(chan struct{}),
		failed:    make(chan struct{}),
		dead:      make(chan struct{}),
		instances: make(map[int64]*instance),
	}
	spec := dist.MeshSpec{TP: ranks, FSDP: 1, DP: replicas}
	topo := dist.Topology{Nodes: 1, GPUsPerNode: spec.World()}
	if spec.World() > 8 && spec.World()%8 == 0 {
		topo = dist.Frontier(spec.World() / 8)
	}
	mesh, err := dist.NewMesh(spec, topo)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		mesh.SetObserver(func(a dist.Axis, rank int) comm.Observer {
			return obs.NewCommObserver(tr.Rank(rank), obs.CommCat(a.String()))
		})
	}
	h.mesh = mesh
	go func() {
		err := mesh.Run(func(rank int, m *dist.Mesh) error {
			return h.worker(rank, m)
		})
		// Every rank has exited. Stop admitting new senders, wait for the
		// attached batchers to finish (they exit on the same failed/quit
		// signals), then fail any micro-batches stranded in the work
		// buffer — with both sides gone this drain has no concurrent sender
		// or receiver. On a clean Close the batchers exited first and the
		// workers drained the channel, so this finds nothing.
		h.fail()
		h.sendMu.Lock()
		h.sendersClosed = true
		h.sendMu.Unlock()
		h.senders.Wait()
		for {
			bj, ok := h.takeWork()
			if !ok {
				break
			}
			bj.fail()
		}
		h.runErr = err
		close(h.dead)
	}()
	return h, nil
}

// Close stops the rank goroutines and waits for them; it is idempotent and
// returns the host's terminal error. Engines attached to the host should be
// closed first — Close releases any still attached, failing their requests.
func (h *Host) Close() error {
	h.closeOnce.Do(func() { close(h.quit) })
	<-h.dead
	return h.runErr
}

// Done is closed when every rank goroutine has exited; Err then reports why.
func (h *Host) Done() <-chan struct{} { return h.dead }

// Err returns the terminal error once Done is closed (nil for a clean
// Close), nil while the host is running.
func (h *Host) Err() error {
	select {
	case <-h.dead:
		return h.runErr
	default:
		return nil
	}
}

// fail marks the host failed (first worker error wins).
func (h *Host) fail() {
	h.failOnce.Do(func() { close(h.failed) })
}

// addSender registers an engine batcher as a work-channel sender; false
// means the host is already tearing down and no sender may attach.
func (h *Host) addSender() bool {
	h.sendMu.Lock()
	defer h.sendMu.Unlock()
	if h.sendersClosed {
		return false
	}
	h.senders.Add(1)
	return true
}

// load builds one model instance across every mesh rank. Source.Build does
// no collectives, so the whole world loads from this one control goroutine;
// the instance becomes visible to the workers only once complete.
func (h *Host) load(src Source, dt tensor.DType) (*instance, error) {
	select {
	case <-h.quit:
		return nil, ErrClosed
	case <-h.failed:
		return nil, ErrClosed
	default:
	}
	arch := src.Arch()
	world := h.ranks * h.replicas
	inst := &instance{
		arch:   arch,
		dtype:  dt,
		models: make([]*model.FoundationModel, world),
		lo:     make([]int, world),
		hi:     make([]int, world),
	}
	for r := 0; r < world; r++ {
		mdl, err := src.Build(h.mesh.TPComm(r))
		if err != nil {
			return nil, err
		}
		if dt != tensor.F64 {
			// Serving weights are frozen after restore, so the one-time f32
			// panel prepack stays valid for the instance's lifetime.
			mdl.SetInferDType(dt)
		}
		lo, hi := 0, arch.Channels
		if ds, ok := mdl.Stage.(*model.DCHAGStage); ok {
			lo, hi = ds.ChannelBounds()
		}
		inst.models[r], inst.lo[r], inst.hi[r] = mdl, lo, hi
	}
	h.mu.Lock()
	h.nextID++
	inst.id = h.nextID
	h.instances[inst.id] = inst
	h.mu.Unlock()
	return inst, nil
}

// unload drops a drained instance from the worker-visible table.
func (h *Host) unload(inst *instance) {
	h.mu.Lock()
	delete(h.instances, inst.id)
	h.mu.Unlock()
}

// instanceByID resolves a broadcast instance id on a follower rank. A miss
// is a protocol violation (an instance was unloaded with batches still in
// flight — the drain ordering forbids it), reported as a rank panic so the
// mesh aborts instead of hanging.
func (h *Host) instanceByID(id int64) *instance {
	h.mu.RLock()
	inst := h.instances[id]
	h.mu.RUnlock()
	if inst == nil {
		panic(fmt.Sprintf("serve: batch for unloaded instance %d", id))
	}
	return inst
}

// takeWork non-blockingly receives one stranded micro-batch from the work
// channel (teardown path).
func (h *Host) takeWork() (*batchJob, bool) {
	select {
	case bj := <-h.work:
		return bj, bj != nil
	default:
		return nil, false
	}
}

// worker is one mesh rank's serving loop. Rank tp=0 of each TP group is the
// replica leader: it pulls assembled batches from the shared work channel,
// broadcasts a control word (serve/stop + instance id) and then the batch
// over its group, and answers once the group's forward completes. Every
// rank runs the no-grad forward on its instance's channel shard; for D-CHAG
// stages the in-forward AllGather is the only communication, exactly as in
// training.
func (h *Host) worker(rank int, m *dist.Mesh) (err error) {
	// inflight is the micro-batch this leader has pulled but not yet
	// answered; if the worker dies holding one (its own panic, or an abort
	// cascade from another rank), the exit path fails it so its clients get
	// ErrClosed instead of silence.
	var inflight *batchJob
	defer func() {
		if rec := recover(); rec != nil {
			err = comm.RankPanicError("serve", rank, rec)
		}
		if err != nil {
			h.fail()
		}
		if inflight != nil {
			inflight.fail()
		}
	}()
	tpc := m.TPComm(rank)
	row := h.trace.Rank(rank)

	if tpc.Size() == 1 {
		// Single-rank replica: no group coordination needed.
		for {
			select {
			case bj := <-h.work:
				inflight = bj
				sp := row.Begin("infer", "serve")
				pred := bj.inst.models[rank].Infer(bj.x, nil)
				sp.End()
				bj.e.complete(bj, pred)
				inflight = nil
			case <-h.quit:
				return nil
			case <-h.failed:
				return nil
			}
		}
	}

	lead := m.Spec.CoordOf(rank).TP == 0
	// ctrl is the leader's reusable control word: [op, instance id] with
	// op 0 = stop, 1 = serve. Followers learn which instance the batch
	// belongs to from the broadcast, so one mesh serves many models.
	ctrl := tensor.FromSlice([]float64{0, 0}, 2)
	var shard *tensor.Tensor // per-worker channel-slice scratch
	for {
		var bj *batchJob
		var send *tensor.Tensor
		if lead {
			select {
			case bj = <-h.work:
				inflight = bj
				ctrl.Data[0], ctrl.Data[1] = 1, float64(bj.inst.id)
				send = ctrl
			case <-h.quit:
				ctrl.Data[0] = 0
				// Deliberately leader-only: the followers' matching
				// collective is the control Broadcast they are already
				// blocked in below; the stop sentinel pairs with it.
				//lint:ignore collectivesym pairs with the followers' control Broadcast in their loop head
				tpc.Broadcast(ctrl, 0)
				return nil
			case <-h.failed:
				// The failing rank's return aborts every mesh group, which
				// releases this replica's peers from their pending
				// Broadcast; no farewell needed (or possible).
				return nil
			}
		}
		got := tpc.Broadcast(send, 0)
		if got.Data[0] == 0 {
			return nil
		}
		inst := bj.instOrLookup(h, int64(got.Data[1]))
		var x *tensor.Tensor
		if lead {
			x = bj.x
		}
		x = tpc.Broadcast(x, 0)
		in := x
		if lo, hi := inst.lo[rank], inst.hi[rank]; lo != 0 || hi != inst.arch.Channels {
			shard = tensor.EnsureShape(shard, x.Shape[0], hi-lo, x.Shape[2], x.Shape[3])
			in = tensor.SliceAxisInto(shard, x, 1, lo, hi)
		}
		sp := row.Begin("infer", "serve")
		pred := inst.models[rank].Infer(in, nil)
		sp.End()
		if lead {
			bj.e.complete(bj, pred)
			inflight = nil
		}
	}
}

// instOrLookup returns the batch's instance: the leader carries the pointer
// (bj non-nil only on the leader), followers resolve the broadcast id.
func (bj *batchJob) instOrLookup(h *Host, id int64) *instance {
	if bj != nil {
		return bj.inst
	}
	return h.instanceByID(id)
}
