package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// LoadgenOptions configures the self-load generator: Concurrency workers
// issuing Requests requests through the engine's full admission path.
type LoadgenOptions struct {
	// Requests is the total request count.
	Requests int
	// Concurrency is the number of concurrent clients (offered load).
	Concurrency int
	// NewRequest materializes request i. Required.
	NewRequest func(i int) *Request
	// RetryBackoff is slept after an ErrQueueFull rejection before retrying
	// (a well-behaved client's reaction to admission control). 0 defaults
	// to 200µs.
	RetryBackoff time.Duration
}

// LoadgenResult is one load-generation run's outcome.
type LoadgenResult struct {
	// Requests is the number issued; Errors the number that terminally
	// failed (queue-full rejections are retried, not counted here);
	// Retries the number of queue-full backoffs taken.
	Requests, Errors, Retries int
	// Wall is the whole run's duration.
	Wall time.Duration
	// Snapshot is the engine's metrics at the end of the run.
	Snapshot Snapshot
}

// ThroughputRPS is the run's measured request throughput.
func (r LoadgenResult) ThroughputRPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Requests-r.Errors) / r.Wall.Seconds()
}

// RunLoadgen drives the engine with the configured load and blocks until
// every request has completed (or terminally failed). It measures the
// engine hermetically — no network, no sleeps besides queue-full backoff —
// so CI can assert throughput and latency bounds.
func RunLoadgen(e *Engine, opt LoadgenOptions) LoadgenResult {
	if opt.Concurrency < 1 {
		opt.Concurrency = 1
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = 200 * time.Microsecond
	}
	var next, errs, retries atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opt.Requests {
					return
				}
				req := opt.NewRequest(i)
				for {
					_, err := e.Do(context.Background(), req)
					if err == nil {
						break
					}
					if errors.Is(err, ErrQueueFull) {
						retries.Add(1)
						time.Sleep(opt.RetryBackoff)
						continue
					}
					errs.Add(1)
					break
				}
			}
		}()
	}
	wg.Wait()
	return LoadgenResult{
		Requests: opt.Requests,
		Errors:   int(errs.Load()),
		Retries:  int(retries.Load()),
		Wall:     time.Since(start),
		Snapshot: e.Metrics().Snapshot(),
	}
}
