package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestComputeJSONArtifact validates the committed compute-substrate
// trajectory point (BENCH_compute.json, schema dchag-bench/compute/v1,
// written by `dchag-bench -compute`). The artifact is a wall-clock
// measurement, so this test gates on its schema and qualitative claims: the
// blocked driver at least matches the naive kernel everywhere, the ISSUE's
// speedup gates (blocked >= 2x naive, f32 >= 1.5x blocked f64 at the
// largest size) hold where the SIMD micro-kernels ran, and every point was
// measured allocation-free in steady state. Set BENCH_COMPUTE_JSON to
// validate a different artifact file.
func TestComputeJSONArtifact(t *testing.T) {
	path := os.Getenv("BENCH_COMPUTE_JSON")
	if path == "" {
		path = "BENCH_compute.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}

	var rep experiments.ComputeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a compute report: %v", err)
	}
	if rep.Schema != experiments.ComputeSchema {
		t.Fatalf("artifact schema %q, want %q", rep.Schema, experiments.ComputeSchema)
	}
	if len(rep.Points) == 0 || len(rep.Points) != len(rep.Sizes) {
		t.Fatalf("artifact carries %d points for %d sizes", len(rep.Points), len(rep.Sizes))
	}
	if rep.MaxProcs < 1 {
		t.Fatalf("implausible maxprocs %d", rep.MaxProcs)
	}

	// Schema-contract keys must be visible to generic trajectory tooling.
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("artifact is not a JSON object: %v", err)
	}
	for _, key := range []string{"schema", "simd", "maxprocs", "sizes", "points", "claims"} {
		if _, ok := generic[key]; !ok {
			t.Fatalf("artifact missing top-level key %q", key)
		}
	}
	points := generic["points"].([]any)
	point := points[0].(map[string]any)
	for _, key := range []string{"size", "naive_gflops", "blocked_gflops", "f32_gflops",
		"blocked_speedup", "f32_speedup", "blocked_allocs_per_op", "f32_allocs_per_op"} {
		if _, ok := point[key]; !ok {
			t.Fatalf("compute point missing key %q", key)
		}
	}
	claims := generic["claims"].(map[string]any)
	for _, key := range []string{"blocked_speedup_at_max", "f32_speedup_at_max", "steady_state_alloc_free"} {
		if _, ok := claims[key]; !ok {
			t.Fatalf("claims missing key %q", key)
		}
	}

	// Health and the destination-passing contract: every point has positive
	// rates, sizes match the header, and steady state allocated nothing.
	for i, p := range rep.Points {
		if p.Size != rep.Sizes[i] {
			t.Fatalf("point %d has size %d, header says %d", i, p.Size, rep.Sizes[i])
		}
		if p.NaiveGFLOPS <= 0 || p.BlockedGFLOPS <= 0 || p.F32GFLOPS <= 0 {
			t.Fatalf("non-positive rate at size %d: %+v", p.Size, p)
		}
		if p.BlockedAllocsPerOp != 0 || p.F32AllocsPerOp != 0 {
			t.Fatalf("size %d allocated in steady state: blocked %.2f, f32 %.2f allocs/op",
				p.Size, p.BlockedAllocsPerOp, p.F32AllocsPerOp)
		}
		// Blocking must never lose to the kernel it replaced. At the
		// smallest sizes the driver falls back to the direct loops, so
		// parity (within measurement noise) is acceptable; a real loss is
		// not.
		if p.BlockedGFLOPS < 0.9*p.NaiveGFLOPS {
			t.Fatalf("size %d: blocked %.2f GFLOP/s loses to naive %.2f",
				p.Size, p.BlockedGFLOPS, p.NaiveGFLOPS)
		}
	}
	if !rep.Claims.AllocFree {
		t.Fatal("artifact does not claim allocation-free steady state")
	}

	// The ISSUE's throughput gates apply where the vector micro-kernels ran;
	// without them (simd=false) the blocked driver's win over naive is
	// cache-blocking only and the f32 path has no wider-register advantage.
	if !rep.SIMD {
		t.Skip("artifact measured without SIMD micro-kernels; speedup gates not applicable")
	}
	largest := rep.Points[len(rep.Points)-1]
	if largest.Size < 512 {
		t.Fatalf("largest measured size %d; the claim gates are defined at 512", largest.Size)
	}
	if rep.Claims.BlockedSpeedupAtMax != largest.BlockedSpeedup ||
		rep.Claims.F32SpeedupAtMax != largest.F32Speedup {
		t.Fatalf("claims %+v do not match the largest point %+v", rep.Claims, largest)
	}
	if largest.BlockedSpeedup < 2 {
		t.Fatalf("blocked f64 speedup %.2fx at %d^3, want >= 2x over naive",
			largest.BlockedSpeedup, largest.Size)
	}
	if largest.F32Speedup < 1.5 {
		t.Fatalf("f32 speedup %.2fx over blocked f64 at %d^3, want >= 1.5x",
			largest.F32Speedup, largest.Size)
	}
}
