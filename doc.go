// Package repro is a from-scratch Go reproduction of "Distributed
// Cross-Channel Hierarchical Aggregation for Foundation Models" (Tsaris et
// al., SC 2025): the D-CHAG method itself (internal/core), the substrates it
// needs — tensors, neural layers, collectives, tensor/data/fully-sharded
// parallelism, synthetic scientific datasets — and an analytic Frontier
// performance model that regenerates every figure of the paper's evaluation.
//
// See README.md for the layout and quickstart, DESIGN.md for the system
// inventory and substitution rationale, and EXPERIMENTS.md for
// paper-versus-measured results. The root-level benchmarks in bench_test.go
// regenerate each figure (BenchmarkFig*) and time the core primitives.
package repro
