package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestTraceJSONArtifact validates the measured-vs-modeled attribution
// artifact that `dchag-trace -json` emits and the repo commits as
// BENCH_trace.json. By default it validates a freshly generated report
// AND the committed file; when BENCH_TRACE_JSON names a specific
// artifact (as the CI trace job does) it validates that file. The
// report is byte-deterministic — traced wire volumes priced with the
// analytic formulas, no wall clock — so beyond schema checks this gates
// the attribution claim itself: measured per-axis exposed comm within
// 30% of perfmodel.AnalyzeOn.
func TestTraceJSONArtifact(t *testing.T) {
	paths := []string{}
	if p := os.Getenv("BENCH_TRACE_JSON"); p != "" {
		paths = append(paths, p)
	} else {
		rep, _, err := experiments.RunTraceBench()
		if err != nil {
			t.Fatalf("running trace bench: %v", err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("encoding trace report: %v", err)
		}
		fresh := filepath.Join(t.TempDir(), "BENCH_trace.json")
		if err := os.WriteFile(fresh, data, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, fresh)
		if _, err := os.Stat("BENCH_trace.json"); err == nil {
			paths = append(paths, "BENCH_trace.json")
		}
	}

	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading artifact %s: %v", path, err)
		}
		var rep experiments.TraceReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s is not a trace report: %v", path, err)
		}
		if rep.Schema != experiments.TraceSchema {
			t.Fatalf("%s schema %q, want %q", path, rep.Schema, experiments.TraceSchema)
		}
		if rep.World != 8 || len(rep.Axes) != 3 {
			t.Fatalf("%s: want a 3-axis world-8 report, got world=%d axes=%d", path, rep.World, len(rep.Axes))
		}
		if rep.Events == 0 {
			t.Fatalf("%s carries no traced events", path)
		}
		// The acceptance gate: every axis with a modeled exposed time must
		// agree within 30%, and the report must say so.
		for _, a := range rep.Axes {
			if a.Spans == 0 || a.WireBytes == 0 {
				t.Errorf("%s: axis %s traced no collectives", path, a.Axis)
			}
			if a.ModeledExposedSeconds > 0 {
				if a.Ratio < 0.70 || a.Ratio > 1.30 {
					t.Errorf("%s: axis %s measured/modeled ratio %.3f outside [0.70, 1.30]", path, a.Axis, a.Ratio)
				}
			}
		}
		if !rep.Agrees || rep.MaxRatioErr > 0.30 {
			t.Fatalf("%s: attribution gate failed: agrees=%v max ratio err %.3f", path, rep.Agrees, rep.MaxRatioErr)
		}

		// Schema-contract keys for generic tooling.
		var generic map[string]any
		if err := json.Unmarshal(raw, &generic); err != nil {
			t.Fatalf("%s is not a JSON object: %v", path, err)
		}
		for _, key := range []string{"schema", "strategy", "world", "topology", "events", "compute_seconds", "axes", "max_ratio_err", "agrees"} {
			if _, ok := generic[key]; !ok {
				t.Fatalf("%s missing top-level key %q", path, key)
			}
		}
	}
}
