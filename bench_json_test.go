package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

// TestSweepJSONArtifact validates the machine-readable sweep output that
// `dchag-bench -json` emits and CI uploads as the BENCH_sweep.json
// artifact. By default it round-trips a freshly generated report; when
// BENCH_SWEEP_JSON names an existing artifact (as the CI bench job does),
// it validates that file instead, so a malformed artifact fails tier-1.
func TestSweepJSONArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		rep := experiments.RunSweep([]int{8, 512})
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatalf("encoding sweep report: %v", err)
		}
		path = filepath.Join(t.TempDir(), "BENCH_sweep.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}

	// The artifact must decode into the typed report...
	var rep experiments.SweepReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a sweep report: %v", err)
	}
	if rep.Schema != experiments.SweepSchema {
		t.Fatalf("artifact schema %q, want %q", rep.Schema, experiments.SweepSchema)
	}
	if len(rep.Points) == 0 || len(rep.Cliff) == 0 {
		t.Fatal("artifact must carry sweep points and a cliff series")
	}

	// ...and expose the schema-contract keys to generic tooling that diffs
	// perf trajectories without importing this module.
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("artifact is not a JSON object: %v", err)
	}
	for _, key := range []string{"schema", "model", "channels", "gpus_per_node", "overlap", "scales", "cliff_gcds", "points", "cliff"} {
		if _, ok := generic[key]; !ok {
			t.Fatalf("artifact missing top-level key %q", key)
		}
	}
	points, ok := generic["points"].([]any)
	if !ok || len(points) == 0 {
		t.Fatal("artifact points must be a non-empty array")
	}
	point, ok := points[0].(map[string]any)
	if !ok {
		t.Fatal("sweep point must be an object")
	}
	for _, key := range []string{"gcds", "nodes", "method", "tp", "fsdp", "dp", "tp_intra_node",
		"micro_batch", "fits", "mem_bytes_per_gpu", "step_seconds", "serial_step_seconds",
		"compute_seconds", "comm_seconds", "exposed_seconds",
		"tflops_per_sec", "tflops_per_sec_per_node", "best"} {
		if _, ok := point[key]; !ok {
			t.Fatalf("sweep point missing key %q", key)
		}
	}
	for _, bd := range []string{"comm_seconds", "exposed_seconds"} {
		comm, ok := point[bd].(map[string]any)
		if !ok {
			t.Fatalf("%s must be an object", bd)
		}
		for _, key := range []string{"tp_seconds", "fsdp_seconds", "dp_seconds", "total_seconds"} {
			if _, ok := comm[key]; !ok {
				t.Fatalf("%s breakdown missing key %q", bd, key)
			}
		}
	}

	// Whatever produced the artifact, the paper's qualitative claim must
	// hold at the largest scale: the best shape keeps TP within the node.
	maxScale := 0
	for _, s := range rep.Scales {
		if s > maxScale {
			maxScale = s
		}
	}
	best, ok := rep.BestAt(maxScale)
	if !ok {
		t.Fatalf("artifact has no best point at %d GCDs", maxScale)
	}
	if best.TP > rep.GPUsPerNode || !best.TPIntraNode {
		t.Fatalf("best shape at %d GCDs must keep TP node-local, got TP=%d", maxScale, best.TP)
	}
}
