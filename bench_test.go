package repro

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/train"
)

// benchFig runs a registered figure reproduction once per iteration. The
// analytic figures (6-9, 13-16) are microsecond-scale; the training figures
// (11, 12) run real reduced-scale training and take seconds per iteration.
func benchFig(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run()
		if len(res.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// One benchmark per paper figure (see DESIGN.md experiment index).

func BenchmarkFig06SingleGPU(b *testing.B)   { benchFig(b, "fig06") }
func BenchmarkFig07TPBaseline(b *testing.B)  { benchFig(b, "fig07") }
func BenchmarkFig08DistTok(b *testing.B)     { benchFig(b, "fig08") }
func BenchmarkFig09TreeConfigs(b *testing.B) { benchFig(b, "fig09") }
func BenchmarkFig11MAELoss(b *testing.B)     { benchFig(b, "fig11") }
func BenchmarkFig12WeatherLoss(b *testing.B) { benchFig(b, "fig12") }
func BenchmarkFig13ModelScale(b *testing.B)  { benchFig(b, "fig13") }
func BenchmarkFig14LargeModel(b *testing.B)  { benchFig(b, "fig14") }
func BenchmarkFig15Hybrid(b *testing.B)      { benchFig(b, "fig15") }
func BenchmarkFig16BatchScale(b *testing.B)  { benchFig(b, "fig16") }
func BenchmarkSweepStepTime(b *testing.B)    { benchFig(b, "sweep") }
func BenchmarkServeThroughput(b *testing.B)  { benchFig(b, "serve") }

// Micro-benchmarks of the substrates the figures run on.

func BenchmarkTensorMatMul(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := tensor.NewRNG(1)
			x := tensor.Randn(rng, n, n)
			y := tensor.Randn(rng, n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMul(x, y)
			}
		})
	}
}

func BenchmarkSelfAttentionForwardBackward(b *testing.B) {
	attn := nn.NewSelfAttention("a", 64, 4, 1)
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 2, 32, 64)
	up := tensor.Randn(rng, 2, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attn.Forward(x)
		attn.Backward(up)
	}
}

func BenchmarkPatchEmbedTokenize(b *testing.B) {
	tok := nn.NewPatchEmbed("t", 64, 16, 16, 4, 32, 3)
	x := tensor.Randn(tensor.NewRNG(3), 2, 64, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Forward(x)
	}
}

func BenchmarkHierarchicalAggregator(b *testing.B) {
	for _, kind := range []core.LayerKind{core.KindCross, core.KindLinear} {
		for _, tree := range []int{0, 4} {
			b.Run(fmt.Sprintf("kind=%s/tree=%d", kind, tree), func(b *testing.B) {
				h := core.NewHierarchicalAggregator("h", core.BuildTreePlan(64, tree), kind, 16, 2, 4)
				x := tensor.Randn(tensor.NewRNG(4), 2, 64, 8, 16)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h.Forward(x)
				}
			})
		}
	}
}

func BenchmarkCollectives(b *testing.B) {
	for _, op := range []string{"allreduce", "allgather", "reducescatter"} {
		b.Run(op, func(b *testing.B) {
			_, err := comm.Run(4, func(c *comm.Communicator) error {
				x := tensor.Randn(tensor.NewRNG(int64(c.Rank())), 4096)
				for i := 0; i < b.N; i++ {
					switch op {
					case "allreduce":
						c.AllReduceSum(x)
					case "allgather":
						c.AllGather(x)
					case "reducescatter":
						c.ReduceScatterSum(x, 0)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkDCHAGForwardBackward(b *testing.B) {
	cfg := core.Config{
		Channels: 32, ImgH: 8, ImgW: 8, Patch: 2,
		Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 5,
	}
	rng := tensor.NewRNG(6)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := comm.Run(2, func(c *comm.Communicator) error {
			d := core.NewDCHAG(cfg, c)
			xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
			d.Forward(xs)
			d.Backward(up)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainingStepSerialVsDistributed(b *testing.B) {
	arch := model.Arch{
		Config: core.Config{
			Channels: 16, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 7,
		},
		Depth: 2, MetaTokens: 1,
	}
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 16, Channels: 16, ImgH: 8, ImgW: 8, Endmembers: 2, Noise: 0.01, Seed: 8,
	})
	x := gen.Batch(0, 2)
	batch := func(int) (*tensor.Tensor, *tensor.Tensor) { return x, x }
	opts := train.Options{Steps: 1, Batch: 2, LR: 1e-3, MaskRatio: 0.5, Seed: 9}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			train.Serial(model.NewSerial(arch), opts, batch)
		}
	})
	b.Run("dchag-2ranks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := train.Distributed(arch, 2, false, opts, batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWeatherGeneration(b *testing.B) {
	w := data.NewWeather(data.WeatherConfig{NativeH: 32, NativeW: 64, Steps: 64, DtHours: 6, Seed: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.SnapshotAt(i%32, 8, 16)
	}
}

func BenchmarkRegridBilinear(b *testing.B) {
	f := tensor.Randn(tensor.NewRNG(11), 128, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.RegridBilinear(f, 32, 64)
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationPartialKind compares the three partial-layer kinds of the
// D-CHAG module — the paper's -C and -L variants plus the Perceiver
// extension (Sec. 3.5) — at identical shapes.
func BenchmarkAblationPartialKind(b *testing.B) {
	for _, kind := range []core.LayerKind{core.KindCross, core.KindLinear, core.KindPerceiver} {
		b.Run("kind="+kind.String(), func(b *testing.B) {
			cfg := core.Config{
				Channels: 64, ImgH: 8, ImgW: 8, Patch: 2,
				Embed: 16, Heads: 2, Tree: 0, Kind: kind, Seed: 21,
			}
			rng := tensor.NewRNG(22)
			x := tensor.Randn(rng, 1, cfg.Channels, cfg.ImgH, cfg.ImgW)
			up := tensor.Randn(rng, 1, cfg.Tokens(), cfg.Embed)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := comm.Run(2, func(c *comm.Communicator) error {
					d := core.NewDCHAG(cfg, c)
					d.Forward(tensor.SliceAxis(x, 1, d.ChLo, d.ChHi))
					d.Backward(up)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTreeDepth measures the serial hierarchical aggregator as
// the tree deepens (paper Fig. 3 / Sec. 3.2): deeper trees shrink the
// largest attention group at the cost of more layers.
func BenchmarkAblationTreeDepth(b *testing.B) {
	for _, tree := range []int{0, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("tree=%d", tree), func(b *testing.B) {
			h := core.NewHierarchicalAggregator("h", core.BuildTreePlan(64, tree), core.KindCross, 16, 2, 23)
			x := tensor.Randn(tensor.NewRNG(24), 1, 64, 16, 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y := h.Forward(x)
				h.Backward(y)
			}
		})
	}
}

// BenchmarkAblationSPvsTPBlock compares the two model-parallel ViT blocks
// the paper discusses (TP in Sec. 4.3, SP in Sec. 3.5) at the same shape.
func BenchmarkAblationSPvsTPBlock(b *testing.B) {
	const embed, heads, tokens = 16, 2, 16
	rng := tensor.NewRNG(25)
	x := tensor.Randn(rng, 2, tokens, embed)
	up := tensor.Randn(rng, 2, tokens, embed)
	b.Run("tp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := comm.Run(2, func(c *comm.Communicator) error {
				blk := parallel.NewParallelTransformerBlock("blk", embed, heads, 26, c)
				blk.Forward(x)
				blk.Backward(up)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := comm.Run(2, func(c *comm.Communicator) error {
				blk := parallel.NewSPTransformerBlock("blk", embed, heads, 26, c)
				blk.Forward(parallel.ScatterTokens(x, c))
				blk.Backward(parallel.ScatterTokens(up, c))
				blk.SyncGradients()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSwinVsViT compares windowed (Swin-style, Sec. 3.5) and
// dense self-attention ViT blocks at the same grid size.
func BenchmarkAblationSwinVsViT(b *testing.B) {
	const embed, heads, grid = 16, 2, 8 // 64 tokens
	rng := tensor.NewRNG(27)
	x := tensor.Randn(rng, 2, grid*grid, embed)
	up := tensor.Randn(rng, 2, grid*grid, embed)
	b.Run("vit", func(b *testing.B) {
		blk := nn.NewTransformerBlock("blk", embed, heads, 28)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk.Forward(x)
			blk.Backward(up)
		}
	})
	b.Run("swin", func(b *testing.B) {
		blk := nn.NewSwinBlock("blk", embed, heads, grid, grid, 4, true, 28)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk.Forward(x)
			blk.Backward(up)
		}
	})
}
