GO ?= go

.PHONY: verify fmt-check vet build test fmt bench race

# verify is the tier-1 gate: formatting, vet, full build, full test run.
verify: fmt-check vet build test

# bench runs every benchmark once, writes the topology-aware sweep as the
# BENCH_sweep.json artifact, and re-parses the artifact through the tier-1
# schema test — identical to the CI bench job.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/dchag-bench -json BENCH_sweep.json
	BENCH_SWEEP_JSON=BENCH_sweep.json $(GO) test -run TestSweepJSONArtifact .

# race exercises the rendezvous/abort-heavy packages under the race
# detector — identical to the CI race job.
race:
	$(GO) test -race ./internal/comm/... ./internal/dist/... ./internal/train/...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
