GO ?= go

.PHONY: verify fmt-check vet vet-custom build test fmt bench bench-diff bench-serve bench-compute bench-trace serve-smoke elastic-smoke trace-smoke race

# verify is the tier-1 gate: formatting, vet (standard and project
# analyzers), full build, full test run, and the hermetic elastic and
# observability smokes.
verify: fmt-check vet vet-custom build test elastic-smoke trace-smoke

# bench runs every benchmark once, writes the topology-aware sweep as the
# BENCH_sweep.json artifact, and re-parses the artifact through the tier-1
# schema test — identical to the CI bench job.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/dchag-bench -json BENCH_sweep.json
	BENCH_SWEEP_JSON=BENCH_sweep.json $(GO) test -run TestSweepJSONArtifact .

# bench-diff regenerates the sweep and diffs it against the committed
# trajectory point (best-shape changes, >5% step-time regressions) —
# the mechanical perf gate CI runs before refreshing BENCH_sweep.json.
bench-diff:
	$(GO) run ./cmd/dchag-bench -json BENCH_sweep.new.json
	@status=0; \
	$(GO) run ./cmd/dchag-bench -diff BENCH_sweep.json BENCH_sweep.new.json || status=$$?; \
	rm -f BENCH_sweep.new.json; \
	exit $$status

# bench-serve regenerates the measured serving-trajectory point
# (BENCH_serve.json, schema dchag-bench/serve/v1). Unlike the analytic
# sweep it is wall-clock, so CI validates the committed artifact's schema
# and qualitative claims (TestServeJSONArtifact) instead of diffing bytes.
bench-serve:
	$(GO) run ./cmd/dchag-serve -bench -json BENCH_serve.json

# bench-compute regenerates the measured compute-substrate point
# (BENCH_compute.json, schema dchag-bench/compute/v1: naive vs blocked f64
# vs prepacked f32 GEMM, GFLOP/s and steady-state allocs/op) and re-parses
# it through the tier-1 artifact gate. Wall-clock like the serving point,
# so the gate is schema + qualitative claims, not exact rates.
bench-compute:
	$(GO) run ./cmd/dchag-bench -compute BENCH_compute.json
	BENCH_COMPUTE_JSON=BENCH_compute.json $(GO) test -run TestComputeJSONArtifact .

# serve-smoke is the hermetic serving gate CI runs. First leg: self-train
# a tiny checkpoint at 4 ranks, serve it resharded at 2 ranks x 2 replicas
# over HTTP with the response cache on, drive a few hundred requests
# through the cache/queue/batcher/mesh path, and fail on any request error
# or a total-latency p99 above the limit. Second leg: self-train two
# checkpoints and hot swap between them under sustained load — zero
# dropped requests, exactly one swap.
serve-smoke:
	$(GO) run ./cmd/dchag-serve -loadgen -listen 127.0.0.1:0 \
		-train-ranks 4 -ranks 2 -replicas 2 -batch 8 -deadline 50ms \
		-cache-mb 16 -requests 300 -concurrency 12 -p99-limit 5s
	$(GO) run ./cmd/dchag-serve -swap-smoke \
		-train-ranks 4 -ranks 2 -replicas 2 -batch 8 -deadline 50ms \
		-requests 400 -concurrency 12

# bench-trace regenerates the measured-vs-modeled step-attribution point
# (BENCH_trace.json, schema dchag-bench/trace/v1: per-axis exposed comm
# from a traced 2x2x2 RunMesh run diffed against perfmodel.AnalyzeOn) and
# re-parses it through the tier-1 artifact gate. The report is
# byte-deterministic, so CI can diff the committed artifact exactly.
bench-trace:
	$(GO) run ./cmd/dchag-trace -json BENCH_trace.json
	BENCH_TRACE_JSON=BENCH_trace.json $(GO) test -run TestTraceJSONArtifact .

# trace-smoke is the hermetic observability gate CI runs (dchag-trace
# -smoke): a traced 4-rank hybrid training run exported and validated
# against the Chrome trace-event schema, the measured-vs-modeled
# attribution bench gated at 30%, and a traced serving engine's GET
# /metrics scraped through the strict Prometheus text-format parser.
trace-smoke:
	$(GO) run ./cmd/dchag-trace -smoke

# elastic-smoke is the hermetic elastic-training gate CI runs: self-train
# a tiny model at 8 ranks under a deterministic fault plan that kills rank
# 5 at step 7, let the supervisor re-rendezvous the survivors at 4 ranks
# from the last committed checkpoint, then cold-restore the same commit
# independently and require the continued loss trajectory to be bitwise
# identical. Everything runs in a temp directory.
elastic-smoke:
	$(GO) run ./cmd/dchag-train -elastic-smoke

# race runs the whole module under the race detector — the
# rendezvous/abort paths in comm, the mesh teardown in dist, the
# rank-per-goroutine training and checkpoint loops, and the serving
# engine's queue/batcher/replica handoffs are exactly what -race exists
# for, and the leakcheck-instrumented tests catch stranded goroutines the
# detector alone would miss. Identical to the CI race job.
race:
	$(GO) test -race ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# vet-custom runs the project's own analyzers (cmd/dchag-vet: collective
# symmetry, dropped comm errors, guarded-field locking, hot-path
# allocations) over the whole module. Zero findings is the gate; see
# cmd/dchag-vet/doc.go for the suppression contract.
vet-custom:
	$(GO) run ./cmd/dchag-vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
