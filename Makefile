GO ?= go

.PHONY: verify fmt-check vet build test fmt

# verify is the tier-1 gate: formatting, vet, full build, full test run.
verify: fmt-check vet build test

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...
