package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestServeJSONArtifact validates the committed serving-trajectory point
// (BENCH_serve.json, schema dchag-bench/serve/v1, written by `dchag-serve
// -bench`). The artifact is a wall-clock measurement — not byte-stable like
// the sweep — so this test gates on its schema and its qualitative claims:
// a healthy run (zero errors everywhere) in which micro-batching beats the
// batch-size-1 baseline on the same workload at every measured deadline.
// Set BENCH_SERVE_JSON to validate a different artifact file.
func TestServeJSONArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		path = "BENCH_serve.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}

	var rep experiments.ServeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a serve report: %v", err)
	}
	if rep.Schema != experiments.ServeSchema {
		t.Fatalf("artifact schema %q, want %q", rep.Schema, experiments.ServeSchema)
	}
	if len(rep.Points) == 0 {
		t.Fatal("artifact carries no points")
	}
	if rep.Ranks < 1 || rep.Replicas < 1 || rep.Partitions%rep.Ranks != 0 {
		t.Fatalf("implausible serving topology: ranks=%d replicas=%d partitions=%d", rep.Ranks, rep.Replicas, rep.Partitions)
	}

	// Schema-contract keys must be visible to generic trajectory tooling.
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("artifact is not a JSON object: %v", err)
	}
	for _, key := range []string{"schema", "dtype", "ranks", "replicas", "partitions", "channels", "concurrency", "requests_per_point", "points"} {
		if _, ok := generic[key]; !ok {
			t.Fatalf("artifact missing top-level key %q", key)
		}
	}
	// dtype is additive within serve/v1 (absent meant f64); the committed
	// artifact is measured on the f32 no-grad path and must say so.
	if rep.DType != "f32" && rep.DType != "f64" {
		t.Fatalf("artifact dtype %q, want f32 or f64", rep.DType)
	}
	points := generic["points"].([]any)
	point := points[0].(map[string]any)
	for _, key := range []string{"max_batch", "deadline_ms", "requests", "errors", "retries",
		"wall_seconds", "throughput_rps", "mean_batch", "queued_p50_ms", "queued_p99_ms",
		"total_p50_ms", "total_p99_ms", "max_queue_depth", "best"} {
		if _, ok := point[key]; !ok {
			t.Fatalf("serve point missing key %q", key)
		}
	}

	// Health: every point completed its full load without errors.
	deadlines := map[float64]bool{}
	for _, p := range rep.Points {
		if p.Errors != 0 {
			t.Fatalf("point batch=%d deadline=%v recorded %d errors", p.MaxBatch, p.DeadlineMs, p.Errors)
		}
		if p.Requests != rep.Requests || p.ThroughputRPS <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
		deadlines[p.DeadlineMs] = true
	}

	// The serving claim: at every deadline, the best batched configuration
	// out-serves the batching-off baseline on the same workload.
	for dl := range deadlines {
		base, ok := rep.PointAt(1, dl)
		if !ok {
			t.Fatalf("no batch-1 baseline at deadline %v", dl)
		}
		bestBatched := 0.0
		for _, p := range rep.Points {
			if p.DeadlineMs == dl && p.MaxBatch > 1 && p.ThroughputRPS > bestBatched {
				bestBatched = p.ThroughputRPS
			}
		}
		if bestBatched <= base.ThroughputRPS {
			t.Fatalf("deadline %v: best batched throughput %.0f does not beat batch-1 %.0f",
				dl, bestBatched, base.ThroughputRPS)
		}
	}
	if best, ok := rep.Best(); !ok || best.MaxBatch <= 1 {
		t.Fatalf("best point %+v should be a batched configuration", func() any { b, _ := rep.Best(); return b }())
	}
}
