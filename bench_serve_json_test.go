package repro

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/experiments"
)

// TestServeJSONArtifact validates the committed serving-trajectory point
// (BENCH_serve.json, schema dchag-bench/serve/v1, written by `dchag-serve
// -bench`). The artifact is a wall-clock measurement — not byte-stable like
// the sweep — so this test gates on its schema and its qualitative claims:
// a healthy run (zero errors everywhere) in which micro-batching beats the
// batch-size-1 baseline on the same workload at every measured deadline.
// Set BENCH_SERVE_JSON to validate a different artifact file.
func TestServeJSONArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_JSON")
	if path == "" {
		path = "BENCH_serve.json"
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading artifact: %v", err)
	}

	var rep experiments.ServeReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("artifact is not a serve report: %v", err)
	}
	if rep.Schema != experiments.ServeSchema {
		t.Fatalf("artifact schema %q, want %q", rep.Schema, experiments.ServeSchema)
	}
	if len(rep.Points) == 0 {
		t.Fatal("artifact carries no points")
	}
	if rep.Ranks < 1 || rep.Replicas < 1 || rep.Partitions%rep.Ranks != 0 {
		t.Fatalf("implausible serving topology: ranks=%d replicas=%d partitions=%d", rep.Ranks, rep.Replicas, rep.Partitions)
	}

	// Schema-contract keys must be visible to generic trajectory tooling.
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("artifact is not a JSON object: %v", err)
	}
	for _, key := range []string{"schema", "dtype", "ranks", "replicas", "partitions", "channels", "concurrency", "requests_per_point", "points"} {
		if _, ok := generic[key]; !ok {
			t.Fatalf("artifact missing top-level key %q", key)
		}
	}
	// dtype is additive within serve/v1 (absent meant f64); the committed
	// artifact is measured on the f32 no-grad path and must say so.
	if rep.DType != "f32" && rep.DType != "f64" {
		t.Fatalf("artifact dtype %q, want f32 or f64", rep.DType)
	}
	points := generic["points"].([]any)
	point := points[0].(map[string]any)
	for _, key := range []string{"max_batch", "deadline_ms", "requests", "errors", "retries",
		"wall_seconds", "throughput_rps", "mean_batch", "queued_p50_ms", "queued_p99_ms",
		"total_p50_ms", "total_p99_ms", "max_queue_depth", "best"} {
		if _, ok := point[key]; !ok {
			t.Fatalf("serve point missing key %q", key)
		}
	}

	// Health: every point completed its full load without errors.
	deadlines := map[float64]bool{}
	for _, p := range rep.Points {
		if p.Errors != 0 {
			t.Fatalf("point batch=%d deadline=%v recorded %d errors", p.MaxBatch, p.DeadlineMs, p.Errors)
		}
		if p.Requests != rep.Requests || p.ThroughputRPS <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
		deadlines[p.DeadlineMs] = true
	}

	// The serving claim: at every deadline, the best batched configuration
	// out-serves the batching-off baseline on the same workload.
	for dl := range deadlines {
		base, ok := rep.PointAt(1, dl)
		if !ok {
			t.Fatalf("no batch-1 baseline at deadline %v", dl)
		}
		bestBatched := 0.0
		for _, p := range rep.Points {
			if p.DeadlineMs == dl && p.MaxBatch > 1 && p.ThroughputRPS > bestBatched {
				bestBatched = p.ThroughputRPS
			}
		}
		if bestBatched <= base.ThroughputRPS {
			t.Fatalf("deadline %v: best batched throughput %.0f does not beat batch-1 %.0f",
				dl, bestBatched, base.ThroughputRPS)
		}
	}
	if best, ok := rep.Best(); !ok || best.MaxBatch <= 1 {
		t.Fatalf("best point %+v should be a batched configuration", func() any { b, _ := rep.Best(); return b }())
	}

	// Cache sweep (additive within serve/v1): the committed artifact must
	// carry the full hit-ratio sweep, healthy at every point.
	if len(rep.CachePoints) == 0 {
		t.Fatal("artifact carries no cache_points")
	}
	if rep.CacheBytes <= 0 {
		t.Fatalf("cache sweep measured with implausible cache_bytes %d", rep.CacheBytes)
	}
	cp := generic["cache_points"].([]any)[0].(map[string]any)
	for _, key := range []string{"hit_ratio", "requests", "errors", "retries", "wall_seconds",
		"throughput_rps", "cache_hits", "cache_misses", "coalesced",
		"hit_p50_ms", "hit_p99_ms", "total_p50_ms", "total_p99_ms"} {
		if _, ok := cp[key]; !ok {
			t.Fatalf("cache point missing key %q", key)
		}
	}
	for _, want := range []float64{0, 0.5, 0.9} {
		p, ok := rep.CachePointAt(want)
		if !ok {
			t.Fatalf("cache sweep missing the %.1f hit-ratio point", want)
		}
		if p.Errors != 0 || p.Requests != rep.Requests || p.ThroughputRPS <= 0 {
			t.Fatalf("implausible cache point %+v", p)
		}
		if served := p.CacheHits + p.CacheMisses + p.Coalesced; served != uint64(p.Requests) {
			t.Fatalf("cache point %.1f: hits+misses+coalesced = %d, want every one of %d requests accounted", want, served, p.Requests)
		}
	}
	// The cache claims: a hot request stream out-serves the all-miss baseline
	// by at least 5x, and a cache hit's p99 sits well under the batched
	// forward's p99 on the same engine shape.
	cold, _ := rep.CachePointAt(0)
	hot, _ := rep.CachePointAt(0.9)
	if hot.ThroughputRPS < 5*cold.ThroughputRPS {
		t.Fatalf("0.9 hit-ratio throughput %.0f is under 5x the all-miss %.0f", hot.ThroughputRPS, cold.ThroughputRPS)
	}
	if hot.HitP99Ms <= 0 || hot.HitP99Ms >= cold.TotalP99Ms {
		t.Fatalf("cache-hit p99 %.3fms does not undercut the batched-forward p99 %.3fms", hot.HitP99Ms, cold.TotalP99Ms)
	}

	// Swap under load (additive within serve/v1): exactly one hot swap with
	// zero client errors and zero engine-side failures.
	if rep.Swap == nil {
		t.Fatal("artifact carries no swap measurement")
	}
	sw := generic["swap"].(map[string]any)
	for _, key := range []string{"requests", "errors", "retries", "failed", "swaps", "wall_seconds", "throughput_rps"} {
		if _, ok := sw[key]; !ok {
			t.Fatalf("swap measurement missing key %q", key)
		}
	}
	if rep.Swap.Swaps != 1 {
		t.Fatalf("swap bench recorded %d swaps, want exactly 1", rep.Swap.Swaps)
	}
	if rep.Swap.Errors != 0 || rep.Swap.Failed != 0 {
		t.Fatalf("swap bench dropped requests: %d client errors, %d engine-side failures", rep.Swap.Errors, rep.Swap.Failed)
	}
	if rep.Swap.Requests != rep.Requests || rep.Swap.ThroughputRPS <= 0 {
		t.Fatalf("implausible swap measurement %+v", *rep.Swap)
	}
}
