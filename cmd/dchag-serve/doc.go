// Command dchag-serve serves forward-only inference from any dchag-ckpt/v1
// checkpoint over the simulated device mesh: a bounded request queue with
// admission control, a dynamic micro-batcher (flush on batch-size cap or
// latency deadline), and worker replicas pinned to the mesh — each replica
// a TP group of -ranks goroutine ranks running the no-grad D-CHAG forward,
// resharding the checkpoint to the serving topology on load (save at p
// ranks, serve at any q dividing the logical partition count).
//
// Modes:
//
//	dchag-serve -ckpt ckpt/ -listen :8080
//	    Serve HTTP until interrupted. Endpoints:
//	      POST /v1/predict  {"id","shape":[c,h,w],"values":[...],"channels":[...]}
//	                        -> {"id","shape":[C,H,W],"values":[...],
//	                            "batch_size","queued_ms","total_ms"}
//	                        Inputs on any spatial grid are bilinearly
//	                        regridded to the model grid; "channels" names a
//	                        partial channel set (missing channels are
//	                        zero-filled, the normalized-data mean).
//	                        429 + Retry-After signals queue-full backpressure.
//	      GET  /v1/stats    serve.Snapshot as JSON
//	      GET  /healthz     200 while live, 503 after shutdown
//
//	dchag-serve -loadgen [-requests N] [-concurrency K] [-p99-limit D]
//	    Hermetic smoke mode: with no -ckpt it first trains a tiny demo model
//	    at -train-ranks ranks and checkpoints it, then serves the checkpoint
//	    at -ranks ranks (a different topology — the reshard round trip) and
//	    drives N requests through the full queue/batcher/mesh path — over
//	    HTTP when -listen is set, in-process otherwise. Exits 1 on any
//	    request error or when the server-side total-latency p99 exceeds
//	    -p99-limit. This is what `make serve-smoke` runs in CI.
//
//	dchag-serve -bench [-json BENCH_serve.json] [-quick]
//	    Measure the batch-size x deadline sweep and write the machine-
//	    readable report (the first serving point of the perf trajectory,
//	    committed as BENCH_serve.json).
//
// # Schema dchag-bench/serve/v1
//
// The report is a single JSON object:
//
//	{
//	  "schema":             "dchag-bench/serve/v1",
//	  "dtype":              inference arithmetic, "f64" or "f32" (additive
//	                        within v1; absent meant f64 — the committed
//	                        artifact measures the f32 no-grad path),
//	  "note":               free-text version annotation (optional),
//	  "ranks":              TP ranks per replica,
//	  "replicas":           replica count,
//	  "partitions":         logical D-CHAG partition count of the model,
//	  "channels":           model channel count,
//	  "concurrency":        loadgen client count,
//	  "requests_per_point": requests issued per configuration,
//	  "points": [
//	    {
//	      "max_batch":      micro-batch cap (1 = batching off),
//	      "deadline_ms":    micro-batch flush deadline,
//	      "requests":       requests issued,
//	      "errors":         terminal failures (0 in a healthy run),
//	      "retries":        queue-full backoffs taken (admission control),
//	      "wall_seconds":   run duration,
//	      "throughput_rps": measured requests/second,
//	      "mean_batch":     mean requests per dispatched micro-batch,
//	      "queued_p50_ms", "queued_p99_ms":
//	                        batch-formation wait quantiles,
//	      "total_p50_ms", "total_p99_ms":
//	                        enqueue-to-response latency quantiles,
//	      "max_queue_depth": deepest queue observed,
//	      "best":           true on the highest-throughput point
//	    }, ...
//	  ]
//	}
//
// Unlike dchag-bench/sweep/v2 (an analytic simulation, byte-stable across
// runs), serve/v1 points are wall-clock measurements: trajectory tooling
// should gate on the qualitative claims — zero errors, batching-on
// throughput exceeding the max_batch=1 baseline at the same deadline — not
// on exact magnitudes. TestServeJSONArtifact enforces exactly that on the
// committed artifact.
package main
