// Command dchag-serve serves forward-only inference from any dchag-ckpt/v1
// checkpoint over the simulated device mesh: a bounded request queue with
// admission control, a dynamic micro-batcher (flush on batch-size cap or
// latency deadline), and worker replicas pinned to the mesh — each replica
// a TP group of -ranks goroutine ranks running the no-grad D-CHAG forward,
// resharding the checkpoint to the serving topology on load (save at p
// ranks, serve at any q dividing the logical partition count).
//
// Because the no-grad forward is bitwise deterministic, responses are
// content-addressable: -cache-mb puts a sharded, byte-bounded LRU response
// cache in front of the micro-batcher, keyed by (checkpoint instance, dtype,
// input grid, channel set, input bytes). A hit returns without queuing;
// identical concurrent misses coalesce onto a single forward. -watch polls
// the -ckpt directory for newer committed checkpoints (the manifest is
// written last, so partial saves are never picked up) and hot swaps them in
// without dropping in-flight requests; the swap invalidates only the
// replaced model's cache entries.
//
// Modes:
//
//	dchag-serve -ckpt ckpt/ -listen :8080 [-cache-mb M] [-watch]
//	    Serve HTTP until interrupted. Endpoints:
//	      POST /v1/predict  {"id","shape":[c,h,w],"values":[...],"channels":[...]}
//	                        -> {"id","shape":[C,H,W],"values":[...],
//	                            "batch_size","queued_ms","total_ms"}
//	                        Inputs on any spatial grid are bilinearly
//	                        regridded to the model grid; "channels" names a
//	                        partial channel set (missing channels are
//	                        zero-filled, the normalized-data mean).
//	                        429 + Retry-After signals queue-full backpressure.
//	      GET  /v1/stats    serve.Snapshot as JSON
//	      GET  /healthz     200 while live, 503 after shutdown
//
//	dchag-serve -loadgen [-requests N] [-concurrency K] [-p99-limit D]
//	    Hermetic smoke mode: with no -ckpt it first trains a tiny demo model
//	    at -train-ranks ranks and checkpoints it, then serves the checkpoint
//	    at -ranks ranks (a different topology — the reshard round trip) and
//	    drives N requests through the full queue/batcher/mesh path — over
//	    HTTP when -listen is set, in-process otherwise. Exits 1 on any
//	    request error or when the server-side total-latency p99 exceeds
//	    -p99-limit. This is what `make serve-smoke` runs in CI.
//
//	dchag-serve -swap-smoke [-requests N] [-concurrency K]
//	    Hermetic hot-swap smoke: self-train two checkpoints of the same
//	    architecture to different steps, serve the first under sustained
//	    in-process load with the response cache on, hot swap to the second
//	    mid-stream. Exits 1 on any dropped request or if the swap count is
//	    not exactly 1. `make serve-smoke` runs this after the loadgen smoke.
//
//	dchag-serve -bench [-json BENCH_serve.json] [-quick]
//	    Measure the batch-size x deadline sweep, the cache hit-ratio sweep,
//	    and the swap-under-load run, and write the machine-readable report
//	    (the serving point of the perf trajectory, committed as
//	    BENCH_serve.json).
//
// # Schema dchag-bench/serve/v1
//
// The report is a single JSON object:
//
//	{
//	  "schema":             "dchag-bench/serve/v1",
//	  "dtype":              inference arithmetic, "f64" or "f32" (additive
//	                        within v1; absent meant f64 — the committed
//	                        artifact measures the f32 no-grad path),
//	  "note":               free-text version annotation (optional),
//	  "ranks":              TP ranks per replica,
//	  "replicas":           replica count,
//	  "partitions":         logical D-CHAG partition count of the model,
//	  "channels":           model channel count,
//	  "concurrency":        loadgen client count,
//	  "requests_per_point": requests issued per configuration,
//	  "points": [
//	    {
//	      "max_batch":      micro-batch cap (1 = batching off),
//	      "deadline_ms":    micro-batch flush deadline,
//	      "requests":       requests issued,
//	      "errors":         terminal failures (0 in a healthy run),
//	      "retries":        queue-full backoffs taken (admission control),
//	      "wall_seconds":   run duration,
//	      "throughput_rps": measured requests/second,
//	      "mean_batch":     mean requests per dispatched micro-batch,
//	      "queued_p50_ms", "queued_p99_ms":
//	                        batch-formation wait quantiles,
//	      "total_p50_ms", "total_p99_ms":
//	                        enqueue-to-response latency quantiles,
//	      "max_queue_depth": deepest queue observed,
//	      "best":           true on the highest-throughput point
//	    }, ...
//	  ],
//	  "cache_bytes":        response-cache byte bound the cache sweep and the
//	                        swap bench ran with (additive within v1),
//	  "cache_points": [     hit-ratio sweep with the cache on (additive):
//	    {
//	      "hit_ratio":      targeted repeat fraction of the request stream
//	                        (0 = every request unique, the all-miss baseline),
//	      "requests", "errors", "retries", "wall_seconds", "throughput_rps":
//	                        loadgen outcome as in points,
//	      "cache_hits":     requests answered from the cache,
//	      "cache_misses":   requests that owned a forward,
//	      "coalesced":      requests that joined an in-flight forward,
//	      "hit_p50_ms", "hit_p99_ms":
//	                        cache-hit latency quantiles (no queue, no forward),
//	      "total_p50_ms", "total_p99_ms":
//	                        forward-served latency quantiles of the same run
//	    }, ...
//	  ],
//	  "swap": {             swap-under-load measurement (additive):
//	    "requests", "errors", "retries", "wall_seconds", "throughput_rps":
//	                        loadgen outcome across the swap,
//	    "failed":           engine-side failures (0 = no request dropped),
//	    "swaps":            hot swaps performed (exactly 1)
//	  }
//	}
//
// The cache_points/cache_bytes/swap fields are additive within serve/v1:
// artifacts written before they existed decode without them and mean "not
// measured".
//
// Unlike dchag-bench/sweep/v2 (an analytic simulation, byte-stable across
// runs), serve/v1 points are wall-clock measurements: trajectory tooling
// should gate on the qualitative claims — zero errors, batching-on
// throughput exceeding the max_batch=1 baseline at the same deadline, the
// 0.9-hit-ratio stream out-serving the all-miss baseline by at least 5x
// with hit p99 under the batched-forward p99, the swap run dropping zero
// requests across exactly one swap — not on exact magnitudes.
// TestServeJSONArtifact enforces exactly that on the committed artifact.
package main
