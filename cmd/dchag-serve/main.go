package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/debugserver"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dchag-serve: ")
	var (
		ckptDir  = flag.String("ckpt", "", "checkpoint directory to serve (dchag-ckpt/v1; empty: self-train a demo model first)")
		ranks    = flag.Int("ranks", 2, "TP (channel-sharding) ranks per replica; must divide the model's logical partitions")
		replicas = flag.Int("replicas", 2, "model replicas consuming batches")
		batch    = flag.Int("batch", 8, "micro-batch size cap (1 disables batching)")
		deadline = flag.Duration("deadline", 10*time.Millisecond, "micro-batch flush deadline")
		queue    = flag.Int("queue", 0, "request queue depth (admission control; 0: 4*batch*replicas)")
		cacheMB  = flag.Int64("cache-mb", 0, "content-addressable response cache size in MiB (0 disables)")
		watch    = flag.Bool("watch", false, "poll -ckpt for newer committed checkpoints and hot swap them in")
		listen   = flag.String("listen", "", "HTTP listen address (e.g. :8080 or 127.0.0.1:0); empty with -loadgen serves in-process")

		loadgen  = flag.Bool("loadgen", false, "drive the server with a self-generated load, print metrics, exit")
		requests = flag.Int("requests", 400, "loadgen: total requests")
		clients  = flag.Int("concurrency", 16, "loadgen: concurrent clients")
		p99Limit = flag.Duration("p99-limit", 0, "loadgen: fail (exit 1) when the server-side total-latency p99 exceeds this (0: no check)")

		bench     = flag.Bool("bench", false, "run the batch-size x deadline serving sweep and exit (see -json)")
		swapSmoke = flag.Bool("swap-smoke", false, "hermetic: self-train two checkpoints, serve one under load with the cache on, hot swap to the other; exit 1 on any dropped request")
		jsonPath  = flag.String("json", "BENCH_serve.json", "bench: write the dchag-bench/serve/v1 report here")
		quick     = flag.Bool("quick", false, "bench: reduced sweep (batching off vs on at one deadline)")
		trainRank = flag.Int("train-ranks", 4, "self-train: D-CHAG ranks the demo checkpoint is saved at (reshards to -ranks at serve time)")
		trainStep = flag.Int("train-steps", 6, "self-train: optimizer steps")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof profiling on this address (off by default; exposes runtime internals — never bind on an untrusted network)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if flag.NArg() != 0 {
		log.Fatalf("unexpected arguments %v", flag.Args())
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr)
	}

	if *bench {
		runBench(*jsonPath, *quick)
		return
	}
	if *swapSmoke {
		os.Exit(runSwapSmoke(*ranks, *replicas, *batch, *deadline, *trainRank, *trainStep, *requests, *clients))
	}

	dir := *ckptDir
	if dir == "" {
		if !*loadgen && *listen == "" {
			log.Fatal("nothing to do: pass -ckpt (and -listen), or -loadgen, -bench, or -swap-smoke")
		}
		dir = selfTrain(*trainRank, *trainStep)
	}
	src, err := serve.FromCheckpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	arch := src.Arch()
	fmt.Printf("serving %s: %d channels, %d logical partitions, at %d ranks x %d replicas (batch<=%d, deadline %v)\n",
		dir, arch.Channels, arch.Partitions, *ranks, *replicas, *batch, *deadline)

	engine, err := serve.Start(serve.Config{
		Ranks: *ranks, Replicas: *replicas,
		MaxBatch: *batch, MaxWait: *deadline, QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := engine.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()
	if *watch {
		stop := engine.AutoSwap(dir, ckpt.WatchOptions{}, func(u ckpt.Update, err error) {
			if err != nil {
				log.Printf("hot swap to step %d failed: %v", u.Step, err)
				return
			}
			fmt.Printf("hot swapped to checkpoint step %d (%s)\n", u.Step, u.Dir)
		})
		defer stop()
		fmt.Printf("watching %s for newer committed checkpoints\n", dir)
	}

	var baseURL string
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("listening on %s (POST /v1/predict, GET /v1/stats, GET /healthz)\n", baseURL)
		go http.Serve(ln, engine.Handler())
	}

	if *loadgen {
		if code := runLoadgen(engine, baseURL, *requests, *clients, *p99Limit); code != 0 {
			// os.Exit skips the deferred close; tear down explicitly.
			if err := engine.Close(); err != nil {
				log.Printf("engine close: %v", err)
			}
			os.Exit(code)
		}
		return
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %v, shutting down\n", s)
	case <-engine.Done():
		log.Fatalf("engine stopped: %v", engine.Err())
	}
}

// startDebugServer brings up the opt-in pprof listener (see
// internal/debugserver for the trust caveats) and announces it.
func startDebugServer(addr string) {
	bound, err := debugserver.Start(addr)
	if err != nil {
		log.Fatalf("debug listener: %v", err)
	}
	fmt.Printf("pprof debug server on http://%s/debug/pprof/ (do not expose on untrusted networks)\n", bound)
}

// selfTrain builds the hermetic demo checkpoint: a tiny MAE model trained
// distributed at `ranks` D-CHAG ranks, saved shard-per-rank into a temp
// directory. Serving it at a different -ranks exercises the reshard path
// end to end.
func selfTrain(ranks, steps int) string {
	arch := model.Arch{
		Config: core.Config{
			Channels: 16, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 2026,
		},
		Depth: 2, MetaTokens: 1, Partitions: ranks,
	}
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 64, Channels: arch.Channels, ImgH: arch.ImgH, ImgW: arch.ImgW,
		Endmembers: 4, Noise: 0.01, Seed: 2026,
	})
	batchFn := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*4, 4)
		return x, x
	}
	dir, err := os.MkdirTemp("", "dchag-serve-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	opts := train.Options{
		Steps: steps, Batch: 4, LR: 1e-3, MaskRatio: 0.5, Seed: 2026,
		CheckpointDir: dir,
	}
	fmt.Printf("self-training demo checkpoint: %d steps at %d ranks -> %s\n", steps, ranks, dir)
	if _, _, err := train.Distributed(arch, ranks, false, opts, batchFn); err != nil {
		log.Fatal(err)
	}
	return dir
}

// runLoadgen drives the engine — through HTTP when baseURL is set, else
// in-process — and prints the outcome. Returns the process exit code.
func runLoadgen(engine *serve.Engine, baseURL string, requests, clients int, p99Limit time.Duration) int {
	arch := engine.Arch()
	const pool = 64
	inputs := make([]*tensor.Tensor, pool)
	for i := range inputs {
		inputs[i] = tensor.Randn(tensor.NewRNG(int64(3000+i)), arch.Channels, arch.ImgH, arch.ImgW)
	}

	var errCount int
	var wall time.Duration
	if baseURL != "" {
		errCount, wall = httpLoadgen(baseURL, inputs, requests, clients)
	} else {
		res := serve.RunLoadgen(engine, serve.LoadgenOptions{
			Requests:    requests,
			Concurrency: clients,
			NewRequest: func(i int) *serve.Request {
				return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%pool]}
			},
		})
		errCount, wall = res.Errors, res.Wall
	}

	snap := engine.Metrics().Snapshot()
	throughput := float64(requests-errCount) / wall.Seconds()
	fmt.Printf("loadgen: %d requests, %d errors, %.1f req/s over %v\n", requests, errCount, throughput, wall.Round(time.Millisecond))
	fmt.Printf("server:  %d batches (mean %.1f req/batch), queue depth max %d, rejected %d\n",
		snap.Batches, snap.MeanBatch, snap.MaxQueueDepth, snap.Rejected)
	fmt.Printf("latency: queued p50 %.2fms p99 %.2fms; total p50 %.2fms p95 %.2fms p99 %.2fms\n",
		snap.QueuedP50Ms, snap.QueuedP99Ms, snap.TotalP50Ms, snap.TotalP95Ms, snap.TotalP99Ms)

	if errCount != 0 {
		log.Printf("FAIL: %d request errors", errCount)
		return 1
	}
	if p99Limit > 0 {
		limitMs := float64(p99Limit) / float64(time.Millisecond)
		if snap.TotalP99Ms > limitMs {
			log.Printf("FAIL: total-latency p99 %.2fms exceeds limit %.2fms", snap.TotalP99Ms, limitMs)
			return 1
		}
		fmt.Printf("p99 %.2fms within limit %v\n", snap.TotalP99Ms, p99Limit)
	}
	return 0
}

// httpLoadgen issues the load over the JSON endpoint (queue-full 429s are
// retried with backoff), returning the terminal error count and wall time.
func httpLoadgen(baseURL string, inputs []*tensor.Tensor, requests, clients int) (int, time.Duration) {
	var next, errs atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				in := inputs[i%len(inputs)]
				body, _ := json.Marshal(serve.PredictRequest{ID: fmt.Sprint(i), Shape: in.Shape, Values: in.Data})
				for {
					resp, err := http.Post(baseURL+"/v1/predict", "application/json", bytes.NewReader(body))
					if err != nil {
						errs.Add(1)
						break
					}
					code := resp.StatusCode
					resp.Body.Close()
					if code == http.StatusTooManyRequests {
						time.Sleep(time.Millisecond)
						continue
					}
					if code != http.StatusOK {
						errs.Add(1)
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	return int(errs.Load()), time.Since(start)
}

// runBench runs the serving sweep and writes the dchag-bench/serve/v1
// artifact (see doc.go for the schema).
func runBench(path string, quick bool) {
	cfg := experiments.DefaultServeBench()
	if quick {
		cfg = experiments.QuickServeBench()
	}
	rep, err := experiments.RunServeBench(cfg)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	best, _ := rep.Best()
	base, haveBase := rep.PointAt(1, best.DeadlineMs)
	fmt.Printf("wrote %s (%s, %d points)\n", path, rep.Schema, len(rep.Points))
	fmt.Printf("best: batch<=%d @ %.0fms deadline -> %.0f req/s (mean batch %.1f)\n",
		best.MaxBatch, best.DeadlineMs, best.ThroughputRPS, best.MeanBatch)
	if haveBase && base.ThroughputRPS > 0 {
		fmt.Printf("batching speedup over batch-1 at the same deadline: %.2fx\n", best.ThroughputRPS/base.ThroughputRPS)
	}
	for _, p := range rep.CachePoints {
		fmt.Printf("cache %.1f hit ratio: %.0f req/s (%d hits, %d misses, %d coalesced; hit p99 %.3fms, total p99 %.2fms)\n",
			p.HitRatio, p.ThroughputRPS, p.CacheHits, p.CacheMisses, p.Coalesced, p.HitP99Ms, p.TotalP99Ms)
	}
	if cold, okc := rep.CachePointAt(0); okc {
		if hot, okh := rep.CachePointAt(0.9); okh && cold.ThroughputRPS > 0 {
			fmt.Printf("cache speedup at 0.9 hit ratio over all-miss: %.2fx\n", hot.ThroughputRPS/cold.ThroughputRPS)
		}
	}
	if sw := rep.Swap; sw != nil {
		fmt.Printf("swap under load: %d requests, %d errors, %d failed, %d swap(s), %.0f req/s\n",
			sw.Requests, sw.Errors, sw.Failed, sw.Swaps, sw.ThroughputRPS)
	}
}

// runSwapSmoke is the hermetic hot-swap smoke `make serve-smoke` runs: train
// two checkpoints of the same architecture to different steps, serve the
// first under sustained in-process load with the response cache on, hot swap
// to the second mid-stream, and require zero dropped requests and exactly
// one swap. Returns the process exit code.
func runSwapSmoke(ranks, replicas, batch int, deadline time.Duration, trainRanks, trainSteps, requests, clients int) int {
	dir1 := selfTrain(trainRanks, trainSteps)
	dir2 := selfTrain(trainRanks, trainSteps+2) // same geometry, further-trained weights
	src1, err := serve.FromCheckpoint(dir1)
	if err != nil {
		log.Fatal(err)
	}
	src2, err := serve.FromCheckpoint(dir2)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := serve.Start(serve.Config{
		Ranks: ranks, Replicas: replicas,
		MaxBatch: batch, MaxWait: deadline,
		CacheBytes: 16 << 20,
	}, src1)
	if err != nil {
		log.Fatal(err)
	}
	arch := engine.Arch()
	const pool = 8 // small pool: the stream repeats, so the swap also exercises cache invalidation
	inputs := make([]*tensor.Tensor, pool)
	for i := range inputs {
		inputs[i] = tensor.Randn(tensor.NewRNG(int64(4000+i)), arch.Channels, arch.ImgH, arch.ImgW)
	}
	fmt.Printf("swap smoke: %d requests @ %d clients across one hot swap (%s -> %s)\n", requests, clients, dir1, dir2)
	done := make(chan serve.LoadgenResult, 1)
	go func() {
		done <- serve.RunLoadgen(engine, serve.LoadgenOptions{
			Requests:    requests,
			Concurrency: clients,
			NewRequest: func(i int) *serve.Request {
				return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%pool]}
			},
		})
	}()
	for {
		s := engine.Metrics().Snapshot()
		if s.Completed+s.CacheHits > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := engine.Swap(src2); err != nil {
		log.Fatalf("hot swap under load: %v", err)
	}
	res := <-done
	snap := engine.Metrics().Snapshot()
	if err := engine.Close(); err != nil {
		log.Printf("engine close: %v", err)
	}
	fmt.Printf("loadgen: %d requests, %d errors, %d retries, %.1f req/s over %v\n",
		res.Requests, res.Errors, res.Retries, res.ThroughputRPS(), res.Wall.Round(time.Millisecond))
	fmt.Printf("server:  %d forwards, %d cache hits, %d failed, %d swap(s)\n",
		snap.Completed, snap.CacheHits, snap.Failed, snap.Swaps)
	if res.Errors != 0 || snap.Failed != 0 {
		log.Printf("FAIL: %d client errors, %d server-side failures across the swap", res.Errors, snap.Failed)
		return 1
	}
	if snap.Swaps != 1 {
		log.Printf("FAIL: %d swaps recorded, want exactly 1", snap.Swaps)
		return 1
	}
	fmt.Println("swap smoke passed: zero dropped requests across the hot swap")
	return 0
}
