// Command dchag-train trains a reduced-scale foundation model on one of the
// two synthetic applications — MAE mask prediction on hyperspectral plant
// images, or ERA5-like weather forecasting — with a configurable channel
// stage: the serial baseline or D-CHAG over simulated ranks.
//
// Examples:
//
//	dchag-train -task mae -ranks 2 -kind L -steps 50
//	dchag-train -task weather -ranks 4 -kind C -tree 2
//	dchag-train -task mae -ranks 1            # serial baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dchag-train: ")
	var (
		task     = flag.String("task", "mae", "training task: mae | weather")
		ranks    = flag.Int("ranks", 2, "simulated D-CHAG (TP) ranks per replica (1 = serial baseline)")
		dp       = flag.Int("dp", 1, "data-parallel replicas (hybrid D-CHAG x DP when > 1)")
		kindFlag = flag.String("kind", "L", "partial-layer kind: L (linear) | C (cross-attention) | P (perceiver)")
		tree     = flag.Int("tree", 0, "partial-module tree configuration (0, 2, 4, ...)")
		steps    = flag.Int("steps", 40, "optimizer steps")
		batch    = flag.Int("batch", 4, "global batch size")
		lr       = flag.Float64("lr", 3e-3, "AdamW learning rate")
		channels = flag.Int("channels", 32, "channel count (mae task only; weather uses 80)")
		embed    = flag.Int("embed", 16, "embedding dimension")
		depth    = flag.Int("depth", 2, "transformer blocks")
		tpvit    = flag.Bool("tpvit", false, "also tensor-parallelize the ViT blocks")
		seed     = flag.Int64("seed", 2024, "master seed")
		save     = flag.String("save", "", "write final weights to this checkpoint file (serial runs)")
		load     = flag.String("load", "", "initialize weights from this checkpoint file (serial runs)")
	)
	flag.Parse()

	var kind core.LayerKind
	switch *kindFlag {
	case "L":
		kind = core.KindLinear
	case "C":
		kind = core.KindCross
	case "P":
		kind = core.KindPerceiver
	default:
		log.Fatalf("unknown -kind %q (want L, C or P)", *kindFlag)
	}

	var arch model.Arch
	var batchFn train.BatchFn
	opts := train.Options{Steps: *steps, Batch: *batch, LR: *lr, ClipNorm: 1, Seed: *seed}

	switch *task {
	case "mae":
		arch = model.Arch{
			Config: core.Config{
				Channels: *channels, ImgH: 8, ImgW: 8, Patch: 2,
				Embed: *embed, Heads: 2, Tree: *tree, Kind: kind, Seed: *seed,
			},
			Depth: *depth, MetaTokens: 1,
		}
		opts.MaskRatio = 0.5
		gen := data.NewHyperspectral(data.HyperspectralConfig{
			Images: 494, Channels: *channels, ImgH: 8, ImgW: 8,
			Endmembers: 4, Noise: 0.01, Seed: *seed,
		})
		batchFn = func(s int) (*tensor.Tensor, *tensor.Tensor) {
			x := gen.Batch(s*(*batch), *batch)
			return x, x
		}
	case "weather":
		w := data.NewWeather(data.WeatherConfig{NativeH: 32, NativeW: 64, Steps: 1024, DtHours: 6, Seed: *seed})
		arch = model.Arch{
			Config: core.Config{
				Channels: w.Channels(), ImgH: 8, ImgW: 16, Patch: 2,
				Embed: *embed, Heads: 2, Tree: *tree, Kind: kind, Seed: *seed,
			},
			Depth: *depth, MetaTokens: 1,
		}
		batchFn = func(s int) (*tensor.Tensor, *tensor.Tensor) {
			return w.PairBatch(s*(*batch), *batch, 1, 8, 16)
		}
	default:
		log.Fatalf("unknown -task %q (want mae or weather)", *task)
	}

	fmt.Printf("task=%s ranks=%d kind=%s tree=%d params(serial)=%d\n",
		*task, *ranks, kind, *tree, arch.ParamCount())

	if *ranks <= 1 {
		m := model.NewSerial(arch)
		if *load != "" {
			f, err := os.Open(*load)
			if err != nil {
				log.Fatal(err)
			}
			if err := nn.LoadParams(f, m.Params()); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("restored weights from %s\n", *load)
		}
		hist := train.Serial(m, opts, batchFn)
		printHistory(hist)
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				log.Fatal(err)
			}
			if err := nn.SaveParams(f, m.Params()); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("saved weights to %s\n", *save)
		}
		return
	}
	if *save != "" || *load != "" {
		log.Fatal("-save/-load support serial runs (-ranks 1); distributed ranks would each need their own shard file")
	}
	if *dp > 1 {
		hist, mesh, err := train.Hybrid(arch, *ranks, *dp, *tpvit, opts, batchFn)
		if err != nil {
			log.Fatal(err)
		}
		printHistory(hist)
		var backward int64
		for r := 0; r < *ranks**dp; r++ {
			backward += mesh.TPComm(r).Group().Traffic().BytesInPhase("backward")
		}
		fmt.Printf("hybrid D-CHAG(TP=%d) x DP=%d on %d simulated GPUs; backward-phase bytes: %d\n",
			*ranks, *dp, *ranks**dp, backward)
		return
	}
	hist, group, err := train.Distributed(arch, *ranks, *tpvit, opts, batchFn)
	if err != nil {
		log.Fatal(err)
	}
	printHistory(hist)
	fmt.Printf("communication: forward %d B, backward %d B (D-CHAG backward is silent)\n",
		group.Traffic().BytesInPhase("forward"), group.Traffic().BytesInPhase("backward"))
	if group.Traffic().BytesInPhase("backward") != 0 {
		fmt.Fprintln(os.Stderr, "warning: unexpected backward communication")
		os.Exit(1)
	}
}

func printHistory(h train.History) {
	for s, l := range h.Loss {
		if s%5 == 0 || s == len(h.Loss)-1 {
			fmt.Printf("step %4d  loss %.6f\n", s, l)
		}
	}
}
