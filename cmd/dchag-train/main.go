// Command dchag-train trains a reduced-scale foundation model on one of the
// two synthetic applications — MAE mask prediction on hyperspectral plant
// images, or ERA5-like weather forecasting — with a configurable channel
// stage: the serial baseline or D-CHAG over simulated ranks.
//
// Examples:
//
//	dchag-train -task mae -ranks 2 -kind L -steps 50
//	dchag-train -task weather -ranks 4 -kind C -tree 2
//	dchag-train -task mae -ranks 1            # serial baseline
//
// Checkpointing (-save / -load / -resume) is shard-aware and reshardable
// (internal/ckpt): each flag names a checkpoint *directory* holding one
// shard file per rank plus a manifest. A checkpoint saved at p ranks can be
// loaded at any rank count dividing its logical partition count — including
// 1, where the serial Reference equivalent of the partitioned model is
// built — with bit-identical logical weights:
//
//	dchag-train -task mae -ranks 4 -steps 20 -save ckpt/
//	dchag-train -task mae -ranks 2 -steps 20 -load ckpt/   # reshard 4 -> 2
//	dchag-train -task mae -ranks 1 -steps 20 -load ckpt/   # reshard -> serial
//	dchag-train -task mae -ranks 4 -steps 40 -resume ckpt/ # exact resume
//
// -load warm-starts the weights only; -resume additionally restores the
// optimizer moments and step count and fast-forwards the mask RNG stream
// and LR schedule, so the resumed run is step-for-step identical to an
// uninterrupted one. -partitions fixes the logical D-CHAG partition count
// independently of -ranks (it defaults to -ranks; on -load/-resume it
// always comes from the checkpoint manifest).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/debugserver"
	"repro/internal/elastic"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dchag-train: ")
	var (
		task     = flag.String("task", "mae", "training task: mae | weather")
		ranks    = flag.Int("ranks", 2, "simulated D-CHAG (TP) ranks per replica (1 = serial baseline)")
		dp       = flag.Int("dp", 1, "data-parallel replicas (hybrid D-CHAG x DP when > 1)")
		kindFlag = flag.String("kind", "L", "partial-layer kind: L (linear) | C (cross-attention) | P (perceiver)")
		tree     = flag.Int("tree", 0, "partial-module tree configuration (0, 2, 4, ...)")
		steps    = flag.Int("steps", 40, "optimizer steps")
		batch    = flag.Int("batch", 4, "global batch size")
		lr       = flag.Float64("lr", 3e-3, "AdamW learning rate")
		channels = flag.Int("channels", 32, "channel count (mae task only; weather uses 80)")
		embed    = flag.Int("embed", 16, "embedding dimension")
		depth    = flag.Int("depth", 2, "transformer blocks")
		tpvit    = flag.Bool("tpvit", false, "also tensor-parallelize the ViT blocks")
		seed     = flag.Int64("seed", 2024, "master seed")
		save     = flag.String("save", "", "write checkpoints (weights + optimizer state) to this directory")
		saveEach = flag.Int("save-every", 0, "also checkpoint every N optimizer steps (0: final step only)")
		keep     = flag.Int("keep", 1, "retain the newest K checkpoints as step subdirectories (1: single-slot overwrite)")
		load     = flag.String("load", "", "warm-start weights from this checkpoint directory (resharding as needed)")
		resume   = flag.String("resume", "", "resume exactly from this checkpoint directory (weights, optimizer moments, step)")
		parts    = flag.Int("partitions", 0, "logical D-CHAG partition count (0: one per rank; -load/-resume read it from the manifest)")
		elast    = flag.Bool("elastic", false, "run under the elastic fault-tolerant supervisor (requires -ranks > 1 and -save for recovery across rank loss)")
		minRanks = flag.Int("min-ranks", 1, "smallest world size the elastic supervisor will re-rendezvous at")
		failRank = flag.Int("fail-rank", -1, "inject a deterministic rank failure: kill this rank (elastic mode only)")
		failStep = flag.Int("fail-step", -1, "inject the failure at the top of this global step (elastic mode only)")
		smoke    = flag.Bool("elastic-smoke", false, "run the hermetic elastic smoke check (train, kill a rank, shrink, verify the trajectory) and exit")

		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof profiling on this address (off by default; exposes runtime internals — never bind on an untrusted network)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if *debugAddr != "" {
		bound, err := debugserver.Start(*debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		fmt.Printf("pprof debug server on http://%s/debug/pprof/ (do not expose on untrusted networks)\n", bound)
	}

	if *smoke {
		runElasticSmoke()
		return
	}

	var kind core.LayerKind
	switch *kindFlag {
	case "L":
		kind = core.KindLinear
	case "C":
		kind = core.KindCross
	case "P":
		kind = core.KindPerceiver
	default:
		log.Fatalf("unknown -kind %q (want L, C or P)", *kindFlag)
	}

	var arch model.Arch
	var batchFn train.BatchFn
	opts := train.Options{Steps: *steps, Batch: *batch, LR: *lr, ClipNorm: 1, Seed: *seed}

	switch *task {
	case "mae":
		arch = model.Arch{
			Config: core.Config{
				Channels: *channels, ImgH: 8, ImgW: 8, Patch: 2,
				Embed: *embed, Heads: 2, Tree: *tree, Kind: kind, Seed: *seed,
			},
			Depth: *depth, MetaTokens: 1,
		}
		opts.MaskRatio = 0.5
		gen := data.NewHyperspectral(data.HyperspectralConfig{
			Images: 494, Channels: *channels, ImgH: 8, ImgW: 8,
			Endmembers: 4, Noise: 0.01, Seed: *seed,
		})
		batchFn = func(s int) (*tensor.Tensor, *tensor.Tensor) {
			x := gen.Batch(s*(*batch), *batch)
			return x, x
		}
	case "weather":
		w := data.NewWeather(data.WeatherConfig{NativeH: 32, NativeW: 64, Steps: 1024, DtHours: 6, Seed: *seed})
		arch = model.Arch{
			Config: core.Config{
				Channels: w.Channels(), ImgH: 8, ImgW: 16, Patch: 2,
				Embed: *embed, Heads: 2, Tree: *tree, Kind: kind, Seed: *seed,
			},
			Depth: *depth, MetaTokens: 1,
		}
		batchFn = func(s int) (*tensor.Tensor, *tensor.Tensor) {
			return w.PairBatch(s*(*batch), *batch, 1, 8, 16)
		}
	default:
		log.Fatalf("unknown -task %q (want mae or weather)", *task)
	}

	// Wire the checkpoint options. -resume implies checkpoints continue to
	// accumulate in the resume directory.
	if *resume != "" {
		if *load != "" {
			log.Fatal("-resume and -load are mutually exclusive")
		}
		if *save != "" && *save != *resume {
			log.Fatal("-resume writes checkpoints to the resume directory; drop -save or point it at the same directory")
		}
		opts.CheckpointDir = *resume
		opts.Resume = true
	} else if *save != "" {
		opts.CheckpointDir = *save
	}
	opts.CheckpointEvery = *saveEach
	opts.CheckpointKeep = *keep

	opts.InitFrom = *load

	// The logical partition count: the manifest's when restoring (it is a
	// model property), -partitions or -ranks otherwise.
	partitions := *parts
	stageKind := "dchag"
	if dir := opts.CheckpointDir; opts.Resume || *load != "" {
		if *load != "" {
			dir = *load
		}
		// Resolve keep-last-k retention roots to their newest complete
		// checkpoint; single-slot directories resolve to themselves.
		dir, err := ckpt.LatestDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		man, err := ckpt.ReadManifest(dir)
		if err != nil {
			log.Fatal(err)
		}
		partitions = man.Partitions
		if k, ok := man.Meta[ckpt.MetaStage]; ok {
			stageKind = k
		}
		fmt.Printf("checkpoint %s: step %d, saved at %d ranks, %d logical partitions\n",
			dir, man.Step, man.World, partitions)
	}
	if partitions == 0 {
		partitions = *ranks
	}
	if *ranks > 1 && partitions%*ranks != 0 {
		log.Fatalf("partition count %d not divisible by %d ranks", partitions, *ranks)
	}
	arch.Partitions = partitions

	fmt.Printf("task=%s ranks=%d kind=%s tree=%d partitions=%d params(serial)=%d\n",
		*task, *ranks, kind, *tree, partitions, arch.ParamCount())

	if *elast {
		if *ranks <= 1 {
			log.Fatal("-elastic requires -ranks > 1")
		}
		eo := elastic.Options{TP: *ranks, DP: *dp, MinWorld: *minRanks, TPViT: *tpvit}
		if *failRank >= 0 || *failStep >= 0 {
			if *failRank < 0 || *failStep < 0 {
				log.Fatal("-fail-rank and -fail-step must be set together")
			}
			eo.Plan = faultinject.NewPlan().KillAtStep(*failRank, *failStep)
		}
		rep, err := elastic.Run(arch, opts, eo, batchFn)
		for _, g := range rep.Generations {
			line := fmt.Sprintf("generation %d: %dx%d from %s at step %d", g.Gen, g.TP, g.DP, g.Source, g.Start)
			if len(g.Failed) > 0 {
				line += fmt.Sprintf(" (failed ranks %v)", g.Failed)
			}
			fmt.Println(line)
		}
		if err != nil {
			log.Fatal(err)
		}
		printHistory(train.History{Loss: rep.Loss})
		return
	}
	if *ranks <= 1 {
		// A fresh serial run without -partitions is the plain baseline
		// stage; anything partitioned (or restored from a partitioned
		// checkpoint) uses the serial equivalent of the partitioned model —
		// the same logical state tree as any distributed run.
		fresh := !opts.Resume && *load == ""
		var m *model.FoundationModel
		if stageKind == "serial" || (fresh && *parts <= 1) {
			m = model.NewSerial(arch)
		} else {
			m = model.NewSerialDCHAGEquivalent(arch, partitions)
		}
		hist, err := train.SerialCheckpointed(m, opts, batchFn)
		if err != nil {
			log.Fatal(err)
		}
		printHistory(hist)
		if opts.CheckpointDir != "" && len(hist.Loss) > 0 {
			fmt.Printf("checkpoint written to %s\n", opts.CheckpointDir)
		}
		return
	}
	if stageKind == "serial" {
		log.Fatal("checkpoint was saved from the plain serial stage; load it with -ranks 1")
	}
	if *dp > 1 {
		hist, mesh, err := train.Hybrid(arch, *ranks, *dp, *tpvit, opts, batchFn)
		if err != nil {
			log.Fatal(err)
		}
		printHistory(hist)
		var backward int64
		for r := 0; r < *ranks**dp; r++ {
			backward += mesh.TPComm(r).Group().Traffic().BytesInPhase("backward")
		}
		fmt.Printf("hybrid D-CHAG(TP=%d) x DP=%d on %d simulated GPUs; backward-phase bytes: %d\n",
			*ranks, *dp, *ranks**dp, backward)
		return
	}
	hist, group, err := train.Distributed(arch, *ranks, *tpvit, opts, batchFn)
	if err != nil {
		log.Fatal(err)
	}
	printHistory(hist)
	if opts.CheckpointDir != "" && len(hist.Loss) > 0 {
		fmt.Printf("checkpoint written to %s (%d shards)\n", opts.CheckpointDir, *ranks)
	}
	fmt.Printf("communication: forward %d B, backward %d B (D-CHAG backward is silent)\n",
		group.Traffic().BytesInPhase("forward"), group.Traffic().BytesInPhase("backward"))
	if group.Traffic().BytesInPhase("backward") != 0 {
		fmt.Fprintln(os.Stderr, "warning: unexpected backward communication")
		os.Exit(1)
	}
}

func printHistory(h train.History) {
	for s, l := range h.Loss {
		if s%5 == 0 || s == len(h.Loss)-1 {
			fmt.Printf("step %4d  loss %.6f\n", h.Start+s, l)
		}
	}
}

// runElasticSmoke is the hermetic CI check for elastic training: train a
// tiny model at 8 ranks with a deterministic fault plan that kills rank 5
// at step 7, let the supervisor shrink to the survivors from the last
// committed checkpoint, then independently cold-restore that same commit at
// the recovery shape and verify the supervisor's continued trajectory is
// bitwise identical. Everything runs in a temp directory; exit status is
// the verdict.
func runElasticSmoke() {
	const (
		world    = 8
		steps    = 12
		batchSz  = 4
		killRank = 5
		killStep = 7
	)
	dir, err := os.MkdirTemp("", "elastic-smoke-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	arch := model.Arch{
		Config: core.Config{
			Channels: world, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Kind: core.KindLinear, Seed: 99,
		},
		Depth: 1, MetaTokens: 1,
	}
	opts := train.Options{
		Steps: steps, Batch: batchSz, LR: 1e-2, MaskRatio: 0.5, Seed: 5, ClipNorm: 1,
		CheckpointDir: dir, CheckpointEvery: 3, CheckpointKeep: 16,
	}
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: steps * batchSz, Channels: world, ImgH: 4, ImgW: 4,
		Endmembers: 2, Noise: 0.01, Seed: 42,
	})
	xs := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		xs[s] = gen.Batch(s*batchSz, batchSz)
	}
	batchFn := func(s int) (*tensor.Tensor, *tensor.Tensor) { return xs[s], xs[s] }

	plan := faultinject.NewPlan().KillAtStep(killRank, killStep)
	rep, err := elastic.Run(arch, opts, elastic.Options{TP: world, DP: 1, MinWorld: 1, Plan: plan}, batchFn)
	if err != nil {
		log.Fatalf("elastic run: %v", err)
	}
	var rec *elastic.Generation
	for i := range rep.Generations {
		g := &rep.Generations[i]
		fmt.Printf("generation %d: %dx%d from %s at step %d (failed ranks %v)\n",
			g.Gen, g.TP, g.DP, g.Source, g.Start, g.Failed)
		if g.Source == elastic.SourceCheckpoint {
			rec = g
		}
	}
	if rec == nil {
		log.Fatalf("no checkpoint-sourced recovery generation in %+v", rep.Generations)
	}
	if rec.TP*rec.DP >= world {
		log.Fatalf("recovery world %d did not shrink below %d", rec.TP*rec.DP, world)
	}

	// Independent cold restore of the same commit at the recovery shape;
	// its trajectory over the same step range is the oracle.
	ck, err := ckpt.Open(ckpt.StepDir(dir, rec.Start))
	if err != nil {
		log.Fatalf("open recovery commit: %v", err)
	}
	coldDir, err := os.MkdirTemp("", "elastic-smoke-cold-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(coldDir)
	coldOpts := opts
	coldOpts.CheckpointDir = coldDir
	arch.Partitions = world
	res := train.RunGeneration(arch, coldOpts, train.GenSpec{
		TP: rec.TP, DP: rec.DP, Start: rec.Start, End: steps, From: ck,
	}, batchFn)
	if res.Err != nil {
		log.Fatalf("cold restore run: %v", res.Err)
	}
	for i, l := range res.Hist.Loss {
		s := rec.Start + i
		if rep.Loss[s] != l {
			log.Fatalf("step %d: elastic loss %v != cold-restore loss %v", s, rep.Loss[s], l)
		}
	}
	fmt.Printf("elastic-smoke: OK — killed rank %d at step %d, recovered at %dx%d from the step-%d commit, %d continued steps bitwise identical to cold restore\n",
		killRank, killStep, rec.TP, rec.DP, rec.Start, len(res.Hist.Loss))
}
