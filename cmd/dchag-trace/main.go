// Command dchag-trace is the observability driver: it replays the
// analytic model's per-axis collective schedule on a real traced 2x2x2
// mesh, diffs the measured attribution against perfmodel (the
// BENCH_trace.json artifact, schema dchag-bench/trace/v1 — see
// cmd/dchag-bench doc.go), and exports the raw trace as Chrome
// trace-event JSON viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Examples:
//
//	dchag-trace                      # print the attribution table
//	dchag-trace -json BENCH_trace.json
//	dchag-trace -chrome trace.json   # export the traced mesh run
//	dchag-trace -train train.json    # trace a 4-rank hybrid training run
//	dchag-trace -smoke               # hermetic end-to-end smoke (CI)
//
// -smoke runs the whole observability surface hermetically: a traced
// 4-rank hybrid training run exported and validated against the Chrome
// trace-event schema, the attribution bench gated at 30%, and a traced
// serving engine's GET /metrics scraped through the strict Prometheus
// text-format parser.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/promtext"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dchag-trace: ")
	var (
		jsonPath   = flag.String("json", "", "write the attribution report (schema dchag-bench/trace/v1) to this path")
		chromePath = flag.String("chrome", "", "export the traced bench mesh run as Chrome trace-event JSON to this path")
		trainPath  = flag.String("train", "", "trace a 4-rank (TP=2 x DP=2) hybrid training run and export it to this path")
		smoke      = flag.Bool("smoke", false, "run the hermetic observability smoke check and exit")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}
	if *smoke {
		runSmoke()
		return
	}
	if *trainPath != "" {
		tr, err := tracedTrainingRun()
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteChromeTraceFile(*trainPath, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rank rows)\n", *trainPath, tr.Rows())
		if *jsonPath == "" && *chromePath == "" {
			return
		}
	}

	rep, tr, err := experiments.RunTraceBench()
	if err != nil {
		log.Fatal(err)
	}
	stamp(tr)
	if *chromePath != "" {
		if err := obs.WriteChromeTraceFile(*chromePath, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d events over %d rows)\n", *chromePath, rep.Events, tr.Rows())
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%s, max ratio err %.2f%%, agrees=%v)\n",
			*jsonPath, rep.Schema, rep.MaxRatioErr*100, rep.Agrees)
		return
	}
	if *chromePath != "" || *trainPath != "" {
		return
	}
	e, _ := experiments.Find("trace")
	fmt.Print(e.Run())
}

// stamp adds the build identity to a tracer's exported metadata.
func stamp(tr *obs.Tracer) {
	for k, v := range buildinfo.Get().Meta() {
		tr.SetMeta(k, v)
	}
}

// smokeArch is the tiny MAE architecture the traced runs use.
func smokeArch(channels int) model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: channels, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Kind: core.KindLinear, Seed: 11,
		},
		Depth: 2, MetaTokens: 1,
	}
}

// tracedTrainingRun trains 3 hybrid steps at TP=2 x DP=2 with tracing on
// and returns the populated tracer: 4 comm/train rows, one per rank.
func tracedTrainingRun() (*obs.Tracer, error) {
	const channels, batch = 8, 4
	arch := smokeArch(channels)
	tr := obs.NewTracer(4, 4096)
	tr.SetMeta("workload", "hybrid mae tp=2 dp=2")
	stamp(tr)
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 64, Channels: channels, ImgH: 8, ImgW: 8,
		Endmembers: 4, Noise: 0.01, Seed: 11,
	})
	opts := train.Options{
		Steps: 3, Batch: batch, LR: 1e-3, ClipNorm: 1, Seed: 11,
		MaskRatio: 0.5, Trace: tr,
	}
	_, _, err := train.Hybrid(arch, 2, 2, false, opts, func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*batch, batch)
		return x, x
	})
	return tr, err
}

// runSmoke is the hermetic observability check wired into `make
// trace-smoke` and CI: any failure exits nonzero.
func runSmoke() {
	// 1. Traced 4-rank training run -> Chrome export -> schema validation.
	tr, err := tracedTrainingRun()
	if err != nil {
		log.Fatalf("traced training run: %v", err)
	}
	dir, err := os.MkdirTemp("", "dchag-trace-smoke")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tracePath := dir + "/train_trace.json"
	if err := obs.WriteChromeTraceFile(tracePath, tr); err != nil {
		log.Fatalf("chrome export: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(raw); err != nil {
		log.Fatalf("exported trace is not valid Chrome trace-event JSON: %v", err)
	}
	events := 0
	for r := 0; r < tr.Rows(); r++ {
		events += len(tr.Events(r))
	}
	if events == 0 {
		log.Fatal("traced training run recorded no events")
	}
	fmt.Printf("trace export ok: %d events over %d rows, %d bytes of valid trace JSON\n",
		events, tr.Rows(), len(raw))

	// 2. Attribution bench: measured wire volumes priced with the shared
	// hw formulas must agree with the analytic model per axis.
	rep, _, err := experiments.RunTraceBench()
	if err != nil {
		log.Fatalf("attribution bench: %v", err)
	}
	if !rep.Agrees {
		log.Fatalf("attribution disagrees: max ratio err %.1f%% > 30%%", rep.MaxRatioErr*100)
	}
	fmt.Printf("attribution ok: %s, max ratio err %.2f%%\n", rep.Strategy, rep.MaxRatioErr*100)

	// 3. Traced serving engine: request lifecycle on the tracer, and
	// GET /metrics must survive the strict Prometheus text parser.
	arch := smokeArch(8)
	str := obs.NewTracer(2, 1024) // 1 worker rank + engine front-end row
	eng, err := serve.Start(serve.Config{
		Ranks: 1, Replicas: 1, MaxBatch: 4, MaxWait: time.Millisecond,
		CacheBytes: 1 << 20, Trace: str,
	}, serve.FromArch(arch))
	if err != nil {
		log.Fatalf("serve start: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: eng.Handler()}
	go srv.Serve(ln)
	x := tensor.Randn(tensor.NewRNG(3), arch.Channels, arch.ImgH, arch.ImgW)
	for i := 0; i < 2; i++ { // second request is a cache hit
		if _, err := eng.Do(context.Background(), &serve.Request{Input: x.Clone()}); err != nil {
			log.Fatalf("serve request: %v", err)
		}
	}
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		log.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fams, err := promtext.Parse(bytes.NewReader(body))
	if err != nil {
		log.Fatalf("/metrics does not parse as Prometheus text format: %v", err)
	}
	for _, name := range []string{
		"dchag_build_info", "dchag_requests_completed_total",
		"dchag_cache_hits_total", "dchag_total_latency_ms",
	} {
		if _, ok := fams[name]; !ok {
			log.Fatalf("/metrics missing family %s", name)
		}
	}
	srv.Close()
	if err := eng.Close(); err != nil {
		log.Fatalf("serve close: %v", err)
	}
	front := str.Events(str.Rows() - 1)
	if len(front) == 0 {
		log.Fatal("serve front-end row recorded no lifecycle events")
	}
	fmt.Printf("serve metrics ok: %d families scraped, %d front-end trace events\n",
		len(fams), len(front))
	fmt.Println("trace smoke ok")
}
