// Command dchag-memplan answers the feasibility questions of the paper's
// Secs. 4.3 and 6.1 for arbitrary configurations: given a model size, a
// channel count and a parallel strategy, it prints the per-component memory
// breakdown on a Frontier GCD, whether the configuration fits, the largest
// micro-batch that fits, and the minimum TP degree that would fit.
//
// Examples:
//
//	dchag-memplan -model 7B -channels 512 -tp 16
//	dchag-memplan -model 26B -channels 256 -method dchag -tp 32 -kind L
//	dchag-memplan -model 1.7B -channels 1024 -sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dchag-memplan: ")
	var (
		modelName = flag.String("model", "7B", "model size: 100M 1B 1.7B 3B 7B 15B 26B")
		channels  = flag.Int("channels", 512, "input channel count")
		method    = flag.String("method", "baseline", "channel stage: baseline | disttok | dchag")
		tp        = flag.Int("tp", 1, "tensor-parallel degree")
		fsdp      = flag.Int("fsdp", 1, "FSDP group size")
		dp        = flag.Int("dp", 1, "data-parallel group size")
		tree      = flag.Int("tree", 0, "D-CHAG tree configuration")
		kindFlag  = flag.String("kind", "L", "D-CHAG partial-layer kind: L | C")
		batch     = flag.Int("batch", 4, "micro-batch size")
		sweep     = flag.Bool("sweep", false, "sweep TP degrees and print the feasibility frontier")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	shape, ok := perfmodel.Shapes[*modelName]
	if !ok {
		names := make([]string, 0, len(perfmodel.Shapes))
		for n := range perfmodel.Shapes {
			names = append(names, n)
		}
		sort.Strings(names)
		log.Fatalf("unknown model %q (have %v)", *modelName, names)
	}
	var m perfmodel.Method
	switch *method {
	case "baseline":
		m = perfmodel.MethodBaseline
	case "disttok":
		m = perfmodel.MethodDistTok
	case "dchag":
		m = perfmodel.MethodDCHAG
	default:
		log.Fatalf("unknown method %q", *method)
	}
	kind := core.KindLinear
	if *kindFlag == "C" {
		kind = core.KindCross
	}

	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()
	wl := perfmodel.ReferenceWorkload(*channels)
	wl.MicroBatch = *batch

	if *sweep {
		fmt.Printf("%s, %d channels, %s: TP feasibility sweep (micro-batch %d)\n", shape.Name, *channels, m, *batch)
		for t := 1; t <= 32; t *= 2 {
			if shape.Heads%t != 0 {
				continue
			}
			s := perfmodel.Strategy{Method: m, TP: t, FSDP: *fsdp, DP: *dp, Tree: *tree, Kind: kind}
			r := perfmodel.Analyze(shape, wl, s, machine, cal)
			fmt.Printf("  TP=%-3d %8.1f GiB/GPU  %s\n", t, r.TotalMemBytes()/(1<<30), status(r))
		}
		return
	}

	strat := perfmodel.Strategy{Method: m, TP: *tp, FSDP: *fsdp, DP: *dp, Tree: *tree, Kind: kind}
	r := perfmodel.Analyze(shape, wl, strat, machine, cal)
	fmt.Printf("%s, %d channels, %s, micro-batch %d, %d GPUs\n", shape.Name, *channels, strat.Label(), *batch, strat.World())
	fmt.Printf("  usable GCD memory: %s\n\n", hw.FormatBytes(machine.UsableMemBytes()))
	for _, c := range perfmodel.Components {
		fmt.Printf("  %-13s params %12.0f   act %8.1f GiB   state %8.1f GiB\n",
			c, r.ParamsPerGPU[c], r.ActBytes[c]/(1<<30), r.StateBytes[c]/(1<<30))
	}
	fmt.Printf("\n  total: %.1f GiB (%.0f%% of usable) -> %s\n",
		r.TotalMemBytes()/(1<<30), 100*r.MemFraction(), status(r))
	fmt.Printf("  max micro-batch at this config: %d\n",
		perfmodel.MaxMicroBatch(shape, perfmodel.ReferenceWorkload(*channels), strat, machine, cal))
	if minTP := perfmodel.MinTPToFit(shape, wl, strat, machine, cal, 32); minTP > 0 {
		fmt.Printf("  minimum TP that fits: %d\n", minTP)
	} else {
		fmt.Printf("  no TP degree up to 32 fits this configuration\n")
	}
	fmt.Printf("  modeled step time: %.3f s (compute %.3f + exposed comm %.3f; %.3f s comm before overlap, %.3f s serial), %.1f TFLOPs/s/node\n",
		r.StepSeconds(), r.ComputeSeconds, r.ExposedCommSeconds, r.CommSeconds, r.SerialStepSeconds(), r.TFLOPsPerSecPerNode())
	if !r.Fits() {
		os.Exit(2)
	}
}

func status(r perfmodel.Report) string {
	if r.Fits() {
		return "fits"
	}
	return "OOM"
}
