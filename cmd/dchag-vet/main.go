// Command dchag-vet runs the repository's custom static-analysis suite.
// See doc.go for the full contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/collectivesym"
	"repro/internal/analysis/commerr"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockedfield"
	"repro/internal/buildinfo"
)

// suite is every analyzer dchag-vet runs, in reporting-name order.
var suite = []*analysis.Analyzer{
	collectivesym.Analyzer,
	commerr.Analyzer,
	hotalloc.Analyzer,
	lockedfield.Analyzer,
}

func main() {
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dchag-vet [-run analyzers] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project analyzers over the packages (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *list {
		for _, a := range suite {
			doc := a.Doc
			if i := strings.IndexByte(doc, ';'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-14s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dchag-vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dchag-vet: %v\n", err)
		os.Exit(2)
	}
	loader := analysis.NewLoader(wd)
	units, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dchag-vet: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	for _, unit := range units {
		diags, err := analysis.Run(unit, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dchag-vet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dchag-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
