// Command dchag-vet is the repository's custom static-analysis suite: a
// multichecker (in the spirit of golang.org/x/tools/go/analysis, but
// self-contained on the standard library so it runs offline) for the bug
// classes a generic linter cannot know about — the SPMD and
// resource-discipline contracts of this codebase.
//
// Usage:
//
//	dchag-vet [-run analyzers] [-list] [packages]
//
// Packages default to ./... relative to the working directory, which
// must be inside the module. Exit status is 0 when the suite finds
// nothing, 1 when there are findings (one per line, in
// file:line:col: analyzer: message form), and 2 on operational errors
// (unknown analyzer, list/type-check failure).
//
// # Analyzers
//
// collectivesym — a comm.Communicator collective (Barrier, AllGather*,
// AllReduce*, ReduceScatterSum, Broadcast, Gather, RingAllReduceSum)
// that is reachable only under a branch whose condition derives from
// rank identity (c.Rank(), mesh coordinates, leader/root flags, or
// locals tainted by them) desynchronizes the group: the other ranks
// rendezvous with nobody, or with the wrong collective. Send/Recv are
// exempt — point-to-point transfers are rank-addressed by design.
//
// commerr — errors returned by internal/comm, internal/dist,
// internal/ckpt and internal/serve carry the root cause of a
// distributed failure (comm.RootCause ranks real failures above
// ErrAborted cascades; ckpt commits only signal success via the error;
// Engine.Close returns the engine's terminal error). Calling such a
// function as a bare statement, in a go/defer statement, or assigning
// its error to _ silently converts a diagnosable failure into a hang or
// a half-written checkpoint.
//
// lockedfield — a struct field annotated `// guarded by <mu>` (doc or
// trailing comment; <mu> must name a sync.Mutex or sync.RWMutex field
// of the same struct) may only be accessed in functions that lexically
// hold that mutex: an earlier <base>.<mu>.Lock() — or RLock() for reads
// — on the access's own base expression. Functions named *Locked are
// assumed caller-locked; composite literals in constructors are exempt.
// Annotations naming a non-mutex sibling are themselves reported.
//
// hotalloc — a function whose doc comment contains `dchag:hotpath`
// promises steady-state allocation-freedom; make/new and tensor
// constructor calls (tensor.New, Zeros, Ones, Full, FromSlice,
// Tensor.Clone) inside it are reported. This keeps ROADMAP's
// buffer-reuse work list explicit instead of archaeological.
//
// # Suppressions
//
// Deliberate exceptions carry a staticcheck-style marker on the flagged
// line or the line above it:
//
//	//lint:ignore collectivesym pairs with the followers' control Broadcast
//
// The first word names one or more analyzers (comma-separated, or
// "all"); everything after it is the mandatory reason. A marker without
// a reason is reported as a finding of the pseudo-analyzer
// "lintignore" — an undocumented suppression is a finding, not an
// escape hatch.
//
// `make vet-custom` runs the suite over ./... and is part of
// `make verify` and CI; the committed tree must be finding-free.
package main
