// Command dchag-bench regenerates the paper's evaluation figures as text
// tables and emits the topology-aware sweep as machine-readable JSON.
//
// Usage:
//
//	dchag-bench                 # run every experiment
//	dchag-bench -fig fig09      # run one figure
//	dchag-bench -fig sweep      # the 8-512 GCD step-time sweep
//	dchag-bench -fig trace      # measured-vs-modeled step attribution
//	dchag-bench -list           # list available experiments
//	dchag-bench -json out.json  # write the sweep report as JSON (no tables)
//	dchag-bench -json out.json -no-overlap  # serial (pre-overlap) pricing
//	dchag-bench -compute out.json           # measured GEMM substrate report
//	dchag-bench -diff old.json new.json     # perf-trajectory gate (below)
//
// Figures 6-9 and 13-16 and the sweep are analytic (internal/perfmodel on
// the Frontier machine model); figures 11 and 12 train real reduced-scale
// models on the simulated rank substrate and take a few seconds each.
//
// # JSON schema (dchag-bench/sweep/v2)
//
// The -json flag writes one experiments.SweepReport object. The schema is a
// stable contract for perf-trajectory tooling (CI uploads the file as the
// BENCH_sweep.json artifact; future PRs diff these mechanically):
//
//	{
//	  "schema": "dchag-bench/sweep/v2",   // bump on breaking change
//	  "model": "7B",                      // perfmodel shape of the sweep
//	  "channels": 500,                    // workload channel count
//	  "gpus_per_node": 8,                 // Frontier node width
//	  "overlap": true,                    // false under -no-overlap
//	  "scales": [8, 16, ..., 512],        // GCD counts swept
//	  "cliff_gcds": 512,                  // scale of the cliff series
//	  "points": [                         // full TP×FSDP×DP grid
//	    {
//	      "gcds": 512, "nodes": 64,
//	      "method": "D-CHAG", "tp": 2, "fsdp": 4, "dp": 64,
//	      "tp_intra_node": true,          // TP rings stay on one node
//	      "micro_batch": 10,              // largest fitting (0 = OOM)
//	      "fits": true,
//	      "mem_bytes_per_gpu": 6.1e10,
//	      "step_seconds": 4.57,           // overlapped step time
//	      "serial_step_seconds": 5.80,    // compute + total comm (v1)
//	      "compute_seconds": 4.04,
//	      "comm_seconds": {               // full per-axis collective time
//	        "tp_seconds": 0.22, "fsdp_seconds": 0.34,
//	        "dp_seconds": 1.19, "total_seconds": 1.76
//	      },
//	      "exposed_seconds": {            // left on the critical path
//	        "tp_seconds": 0.22, "fsdp_seconds": 0.19,
//	        "dp_seconds": 0.12, "total_seconds": 0.53
//	      },
//	      "tflops_per_sec": 56519.7,      // from the overlapped step
//	      "tflops_per_sec_per_node": 883.1,
//	      "best": true                    // top throughput at its scale
//	    }, ...
//	  ],
//	  "cliff": [                          // fixed-batch TP series at
//	    {                                 // cliff_gcds GCDs
//	      "tp": 16, "fsdp": 8, "dp": 4, "micro_batch": 4,
//	      "tp_intra_node": false,
//	      "step_seconds": 1.06, "serial_step_seconds": 1.26,
//	      "compute_seconds": 0.21,
//	      "comm_seconds": { ... }, "exposed_seconds": { ... }
//	    }, ...
//	  ]
//	}
//
// v2 prices step times under the overlap composition model (see
// internal/perfmodel/overlap.go): FSDP parameter traffic prefetches
// against compute, DP gradient buckets overlap the backward pass, TP
// collectives stay on the critical path. step_seconds is compute plus the
// exposed comm; serial_step_seconds keeps the v1 compute + total-comm
// composition so trajectories remain comparable across the schema bump.
// Under -no-overlap the two coincide and "overlap" is false.
//
// Additive fields may appear within v2; readers must ignore unknown keys.
// Field removals or meaning changes bump the schema string.
//
// # JSON schema (dchag-bench/compute/v1)
//
// The -compute flag writes one experiments.ComputeReport object — the
// single-node compute-substrate point of the perf trajectory (CI commits it
// as BENCH_compute.json). Each point is one square GEMM size measured three
// ways: the pre-blocking naive kernel (tensor.MatMulNaiveInto), the packed
// register-tiled float64 driver (tensor.MatMulInto), and the float32 kernel
// against prepacked weight panels (tensor.MatMulPackedF32Into — the serving
// configuration, so packing stays off the measured path):
//
//	{
//	  "schema": "dchag-bench/compute/v1", // bump on breaking change
//	  "simd": true,                       // AVX2+FMA micro-kernels active
//	  "maxprocs": 1,                      // GOMAXPROCS during measurement
//	  "sizes": [64, 128, 256, 512],
//	  "points": [
//	    {
//	      "size": 512,                    // 2*512^3 FLOPs per product
//	      "naive_gflops": 3.2,
//	      "blocked_gflops": 28.8,
//	      "f32_gflops": 50.1,
//	      "blocked_speedup": 9.1,         // blocked / naive
//	      "f32_speedup": 1.74,            // f32 / blocked f64
//	      "blocked_allocs_per_op": 0,     // steady state, reused dst
//	      "f32_allocs_per_op": 0
//	    }, ...
//	  ],
//	  "claims": {                         // evaluated at the largest size
//	    "blocked_speedup_at_max": 9.1,    // gate: >= 2x under simd
//	    "f32_speedup_at_max": 1.74,       // gate: >= 1.5x under simd
//	    "steady_state_alloc_free": true   // gate: always
//	  }
//	}
//
// The report is wall-clock measured, so TestComputeJSONArtifact gates the
// committed artifact on its schema and qualitative claims — blocked at
// least matches naive everywhere, the speedup gates hold where "simd" is
// true, and every point ran allocation-free — not on exact rates.
// Additive fields may appear within v1; readers must ignore unknown keys.
//
// # JSON schema (dchag-bench/trace/v1)
//
// `dchag-trace -json` (cmd/dchag-trace) writes one experiments.TraceReport
// object — the measured-vs-modeled step-attribution point of the perf
// trajectory (committed as BENCH_trace.json). The measured side replays
// the analytic model's per-axis collective schedule on a real traced
// 2x2x2 mesh, inverts the recorded wire volumes back to logical sizes,
// and prices them with the same hw formulas perfmodel.AnalyzeOn uses; no
// wall clock enters the report, so it is byte-deterministic and CI diffs
// the committed artifact exactly:
//
//	{
//	  "schema": "dchag-bench/trace/v1",   // bump on breaking change
//	  "strategy": "D-CHAG-C-Tree0 TP=2 FSDP=2 DP=2",
//	  "world": 8,                         // traced mesh world size
//	  "topology": "2x4",                  // nodes x GPUs-per-node
//	  "events": 120,                      // priced collective spans
//	  "compute_seconds": 9.2e-4,          // modeled per-step compute
//	  "axes": [                           // one entry per mesh axis
//	    {
//	      "axis": "tp",
//	      "spans": 88,                    // traced collective spans
//	      "wire_bytes": 92274688,         // recorded wire traffic
//	      "measured_seconds": 1.1e-3,     // priced, pre-overlap
//	      "modeled_seconds": 1.1e-3,      // perfmodel, pre-overlap
//	      "measured_exposed_seconds": 1.1e-3,  // after shared overlap
//	      "modeled_exposed_seconds": 1.1e-3,
//	      "ratio": 1                      // measured/modeled exposed
//	    }, ...
//	  ],
//	  "max_ratio_err": 0,                 // max |ratio-1| over axes
//	  "agrees": true                      // gate: max_ratio_err <= 0.30
//	}
//
// TestTraceJSONArtifact gates both a fresh report and the committed file
// on the schema, per-axis coverage, and the 30% agreement band; the CI
// trace job additionally requires the regenerated artifact to be
// byte-identical to the committed one. Additive fields may appear within
// v1; readers must ignore unknown keys.
//
// # Report diffing (-diff)
//
// `dchag-bench -diff old.json new.json` compares two sweep reports and
// exits non-zero when the perf trajectory regressed: the best shape at any
// scale changed, a configuration's simulated step time (serial, and under
// v2 also overlapped) regressed beyond -diff-tol (default 5%), a
// configuration flipped to OOM, or coverage was dropped. Improvements and
// added configurations pass silently.
//
// Reports of different schema versions (a committed v1 artifact against a
// v2 regeneration) are comparable: the version change is printed as an
// explicit note and only the fields both schemas share are gated — serial
// step times, fit/OOM status, and coverage. Best-shape marks and
// overlapped times are skipped across versions (v2 chooses best shapes by
// overlapped throughput) and the notes say so.
//
// Exit codes: 0 clean, 1 regressions found, 2 unreadable/incomparable
// reports. CI runs this (`make bench-diff`) against the committed
// BENCH_sweep.json before refreshing it, so every perf-affecting commit
// must either stay inside tolerance or consciously update the committed
// trajectory point.
package main
