// Command dchag-bench regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	dchag-bench                 # run every experiment
//	dchag-bench -fig fig09      # run one figure
//	dchag-bench -list           # list available experiments
//
// Figures 6-9 and 13-16 are analytic (internal/perfmodel on the Frontier
// machine model); figures 11 and 12 train real reduced-scale models on the
// simulated rank substrate and take a few seconds each.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list available experiments")
	format := flag.String("format", "text", "output format: text | markdown")
	flag.Parse()
	render := func(r experiments.Result) string {
		if *format == "markdown" {
			return r.Markdown()
		}
		return r.String()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *fig != "" {
		e, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "dchag-bench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		fmt.Print(render(e.Run()))
		return
	}
	for _, e := range experiments.All() {
		fmt.Print(render(e.Run()))
	}
}
