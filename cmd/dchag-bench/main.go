package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
)

func main() {
	version := flag.Bool("version", false, "print build information and exit")
	fig := flag.String("fig", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list available experiments")
	format := flag.String("format", "text", "output format: text | markdown")
	jsonPath := flag.String("json", "", "write the sweep report as JSON to this path and exit (see doc.go for the schema)")
	computePath := flag.String("compute", "", "measure the GEMM compute substrate and write the report as JSON to this path (see doc.go for the schema)")
	noOverlap := flag.Bool("no-overlap", false, "price the sweep with the serial compute+comm composition instead of the overlap model (affects -json)")
	diff := flag.Bool("diff", false, "compare two sweep reports: dchag-bench -diff old.json new.json; exits 1 on regressions")
	diffTol := flag.Float64("diff-tol", 0.05, "fractional step-time regression tolerance for -diff (0.05 = 5%)")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Get())
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dchag-bench: -diff needs exactly two report paths: old.json new.json")
			os.Exit(2)
		}
		d, err := diffReports(flag.Arg(0), flag.Arg(1), *diffTol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: %v\n", err)
			os.Exit(2)
		}
		for _, n := range d.Notes {
			fmt.Printf("note: %s\n", n)
		}
		if !d.Clean() {
			fmt.Printf("%d regression(s) between %s and %s:\n", len(d.Regressions), flag.Arg(0), flag.Arg(1))
			for _, r := range d.Regressions {
				fmt.Printf("  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions between %s and %s (tolerance %.1f%%)\n", flag.Arg(0), flag.Arg(1), 100**diffTol)
		return
	}
	// Only -diff takes positional arguments; anything else is a mistake
	// (e.g. report paths without -diff).
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "dchag-bench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	render := func(r experiments.Result) string {
		if *format == "markdown" {
			return r.Markdown()
		}
		return r.String()
	}

	if *computePath != "" {
		rep := experiments.RunComputeBench(experiments.DefaultComputeBench())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: encoding compute report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*computePath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: %v\n", err)
			os.Exit(1)
		}
		last := rep.Points[len(rep.Points)-1]
		fmt.Printf("wrote %s (%s, simd=%v, %d sizes; %d^3: naive %.1f, blocked %.1f, f32 %.1f GFLOP/s)\n",
			*computePath, rep.Schema, rep.SIMD, len(rep.Points),
			last.Size, last.NaiveGFLOPS, last.BlockedGFLOPS, last.F32GFLOPS)
		return
	}

	if *jsonPath != "" {
		run := experiments.RunSweep
		if *noOverlap {
			run = experiments.RunSweepSerial
		}
		rep := run(experiments.DefaultSweepScales())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: encoding sweep report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s, %d points, cliff @ %d GCDs)\n",
			*jsonPath, rep.Schema, len(rep.Points), rep.CliffGCDs)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *fig != "" {
		e, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "dchag-bench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		fmt.Print(render(e.Run()))
		return
	}
	for _, e := range experiments.All() {
		fmt.Print(render(e.Run()))
	}
}

// diffReports loads two sweep-report files and returns their comparison.
func diffReports(oldPath, newPath string, tol float64) (experiments.SweepDiff, error) {
	load := func(path string) (experiments.SweepReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return experiments.SweepReport{}, err
		}
		var rep experiments.SweepReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return experiments.SweepReport{}, fmt.Errorf("decoding %s: %w", path, err)
		}
		return rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return experiments.SweepDiff{}, err
	}
	newRep, err := load(newPath)
	if err != nil {
		return experiments.SweepDiff{}, err
	}
	return experiments.DiffSweep(oldRep, newRep, tol)
}
