package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list available experiments")
	format := flag.String("format", "text", "output format: text | markdown")
	jsonPath := flag.String("json", "", "write the sweep report as JSON to this path and exit (see doc.go for the schema)")
	flag.Parse()
	render := func(r experiments.Result) string {
		if *format == "markdown" {
			return r.Markdown()
		}
		return r.String()
	}

	if *jsonPath != "" {
		rep := experiments.RunSweep(experiments.DefaultSweepScales())
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: encoding sweep report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dchag-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%s, %d points, cliff @ %d GCDs)\n",
			*jsonPath, rep.Schema, len(rep.Points), rep.CliffGCDs)
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *fig != "" {
		e, ok := experiments.Find(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "dchag-bench: unknown experiment %q (use -list)\n", *fig)
			os.Exit(1)
		}
		fmt.Print(render(e.Run()))
		return
	}
	for _, e := range experiments.All() {
		fmt.Print(render(e.Run()))
	}
}
